//! The in-memory catalog state and the op-apply machinery.
//!
//! Readers take `Arc<CatalogState>` snapshots — a consistent view that
//! keeps serving even while commits replace the current state
//! (multi-version concurrency control with copy-on-write, §2.4). Each
//! object carries the version that last modified it; OCC validation
//! (§6.3) compares those against a transaction's write set.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use eon_types::{EonError, NodeId, Oid, Result, ShardId, TxnVersion, Value};

use crate::objects::{
    CatalogOp, ContainerMeta, DeleteVectorMeta, ShardDef, SubState, Subscription, Table,
};

/// A complete catalog snapshot. Cloning is O(catalog size); commits
/// clone-then-mutate, which at metadata scale (thousands of objects) is
/// cheap and keeps reader snapshots immutable without locks.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct CatalogState {
    pub shards: Vec<ShardDef>,
    pub tables: BTreeMap<Oid, Table>,
    pub containers: BTreeMap<Oid, ContainerMeta>,
    pub delete_vectors: BTreeMap<Oid, DeleteVectorMeta>,
    /// Keyed by (node, shard); at most one subscription per pair.
    /// Serialized as a list — JSON map keys must be strings.
    #[serde(with = "subs_as_list")]
    pub subscriptions: BTreeMap<(NodeId, ShardId), Subscription>,
    pub mergeout_coord: BTreeMap<ShardId, NodeId>,
    /// Version that last modified each object (for OCC validation).
    pub obj_versions: BTreeMap<Oid, TxnVersion>,
}

mod subs_as_list {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<(NodeId, ShardId), Subscription>,
        ser: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serde::Serialize::serialize(&map.values().collect::<Vec<_>>(), ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> std::result::Result<BTreeMap<(NodeId, ShardId), Subscription>, D::Error> {
        let list: Vec<Subscription> = serde::Deserialize::deserialize(de)?;
        Ok(list.into_iter().map(|s| ((s.node, s.shard), s)).collect())
    }
}

impl CatalogState {
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.tables.values().find(|t| t.name == name)
    }

    /// All containers realizing `projection` in `shard`.
    pub fn containers_for(&self, projection: Oid, shard: ShardId) -> Vec<&ContainerMeta> {
        self.containers
            .values()
            .filter(|c| c.projection == projection && c.shard == shard)
            .collect()
    }

    /// All containers of a projection regardless of shard.
    pub fn containers_for_projection(&self, projection: Oid) -> Vec<&ContainerMeta> {
        self.containers
            .values()
            .filter(|c| c.projection == projection)
            .collect()
    }

    /// Delete vectors tombstoning `container`.
    pub fn delete_vectors_for(&self, container: Oid) -> Vec<&DeleteVectorMeta> {
        self.delete_vectors
            .values()
            .filter(|d| d.container == container)
            .collect()
    }

    /// Subscriptions of `node`, any state.
    pub fn subscriptions_of(&self, node: NodeId) -> Vec<&Subscription> {
        self.subscriptions
            .values()
            .filter(|s| s.node == node)
            .collect()
    }

    /// Nodes subscribed to `shard` in the given state.
    pub fn subscribers_in(&self, shard: ShardId, state: SubState) -> Vec<NodeId> {
        self.subscriptions
            .values()
            .filter(|s| s.shard == shard && s.state == state)
            .map(|s| s.node)
            .collect()
    }

    /// Nodes allowed to *serve* `shard` right now: ACTIVE or REMOVING
    /// (a REMOVING subscriber continues to serve queries until enough
    /// other subscribers exist, §3.3).
    pub fn serving_subscribers(&self, shard: ShardId) -> Vec<NodeId> {
        self.subscriptions
            .values()
            .filter(|s| {
                s.shard == shard && matches!(s.state, SubState::Active | SubState::Removing)
            })
            .map(|s| s.node)
            .collect()
    }

    /// Cluster viability (§3.4): every shard has at least one ACTIVE
    /// subscriber among `up_nodes`.
    pub fn shards_covered(&self, up_nodes: &[NodeId]) -> bool {
        self.shards.iter().all(|sh| {
            self.subscribers_in(sh.id, SubState::Active)
                .iter()
                .any(|n| up_nodes.contains(n))
        })
    }

    /// The segment shard count (excludes the replica shard).
    pub fn segment_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s.kind, crate::objects::ShardKind::Segment))
            .count()
    }

    /// Object version lookup (ZERO when never recorded).
    pub fn version_of(&self, oid: Oid) -> TxnVersion {
        self.obj_versions.get(&oid).copied().unwrap_or(TxnVersion::ZERO)
    }

    /// Apply one op at commit version `v`. Errors leave `self` in a
    /// partially-applied state — callers apply to a scratch clone and
    /// discard on failure.
    pub fn apply(&mut self, op: &CatalogOp, v: TxnVersion) -> Result<()> {
        match op {
            CatalogOp::DefineShards(defs) => {
                if !self.shards.is_empty() {
                    return Err(EonError::Catalog("shards already defined".into()));
                }
                self.shards = defs.clone();
            }
            CatalogOp::CreateTable(t) => {
                if self.table_by_name(&t.name).is_some() {
                    return Err(EonError::Catalog(format!("table {} exists", t.name)));
                }
                let mut t = t.clone();
                if t.defaults.len() != t.schema.len() {
                    t.defaults = vec![Value::Null; t.schema.len()];
                }
                self.obj_versions.insert(t.oid, v);
                self.tables.insert(t.oid, t);
            }
            CatalogOp::DropTable(oid) => {
                self.tables
                    .remove(oid)
                    .ok_or_else(|| EonError::Catalog(format!("no table {oid}")))?;
                let dropped: Vec<Oid> = self
                    .containers
                    .values()
                    .filter(|c| c.table == *oid)
                    .map(|c| c.oid)
                    .collect();
                for c in dropped {
                    self.containers.remove(&c);
                    self.obj_versions.insert(c, v);
                }
                self.obj_versions.insert(*oid, v);
            }
            CatalogOp::AddProjection {
                table,
                oid,
                projection,
            } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| EonError::Catalog(format!("no table {table}")))?;
                projection.validate(&t.schema)?;
                t.projections.push((*oid, projection.clone()));
                self.obj_versions.insert(*table, v);
                self.obj_versions.insert(*oid, v);
            }
            CatalogOp::AddColumn {
                table,
                field,
                default,
            } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| EonError::Catalog(format!("no table {table}")))?;
                if t.schema.index_of(&field.name).is_ok() {
                    return Err(EonError::Catalog(format!(
                        "column {} already exists",
                        field.name
                    )));
                }
                t.schema.fields.push(field.clone());
                t.defaults.push(default.clone());
                let new_idx = t.schema.len() - 1;
                // All-columns projections absorb the new column.
                for (_, p) in &mut t.projections {
                    if p.columns.len() == new_idx {
                        p.columns.push(new_idx);
                    }
                }
                self.obj_versions.insert(*table, v);
            }
            CatalogOp::AddContainer(c) => {
                if self.containers.contains_key(&c.oid) {
                    return Err(EonError::Catalog(format!("container {} exists", c.oid)));
                }
                self.obj_versions.insert(c.oid, v);
                self.containers.insert(c.oid, c.clone());
            }
            CatalogOp::DropContainer(oid) => {
                self.containers
                    .remove(oid)
                    .ok_or_else(|| EonError::Catalog(format!("no container {oid}")))?;
                // Cascade: delete vectors against the container die too.
                let dvs: Vec<Oid> = self
                    .delete_vectors
                    .values()
                    .filter(|d| d.container == *oid)
                    .map(|d| d.oid)
                    .collect();
                for d in dvs {
                    self.delete_vectors.remove(&d);
                    self.obj_versions.insert(d, v);
                }
                self.obj_versions.insert(*oid, v);
            }
            CatalogOp::AddDeleteVector(d) => {
                if !self.containers.contains_key(&d.container) {
                    return Err(EonError::Catalog(format!(
                        "delete vector targets missing container {}",
                        d.container
                    )));
                }
                self.obj_versions.insert(d.oid, v);
                self.delete_vectors.insert(d.oid, d.clone());
            }
            CatalogOp::DropDeleteVector(oid) => {
                self.delete_vectors
                    .remove(oid)
                    .ok_or_else(|| EonError::Catalog(format!("no delete vector {oid}")))?;
                self.obj_versions.insert(*oid, v);
            }
            CatalogOp::UpsertSubscription(s) => {
                self.subscriptions.insert((s.node, s.shard), s.clone());
            }
            CatalogOp::RemoveSubscription { node, shard } => {
                self.subscriptions.remove(&(*node, *shard));
            }
            CatalogOp::SetMergeoutCoordinator { shard, node } => {
                self.mergeout_coord.insert(*shard, *node);
            }
        }
        Ok(())
    }

    /// Drop storage objects for shards *not* in `keep`: what a node does
    /// when unsubscribing (§3.3 "drops the relevant metadata for the
    /// shard"). Global objects are untouched.
    pub fn retain_shards(&mut self, keep: &[ShardId]) {
        self.containers.retain(|_, c| keep.contains(&c.shard));
        self.delete_vectors.retain(|_, d| keep.contains(&d.shard));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::ShardKind;
    use eon_columnar::Projection;
    use eon_types::{schema, Field, HashRange};

    fn mk_table(oid: u64, name: &str) -> Table {
        let s = schema![("id", Int), ("val", Str)];
        Table {
            oid: Oid(oid),
            name: name.into(),
            schema: s.clone(),
            projections: vec![(Oid(oid * 100), Projection::super_projection("p", &s, &[0], &[0]))],
            defaults: vec![Value::Null, Value::Null],
        }
    }

    fn mk_container(oid: u64, proj: u64, shard: u64) -> ContainerMeta {
        ContainerMeta {
            oid: Oid(oid),
            key: format!("data/xx/{oid}"),
            table: Oid(1),
            projection: Oid(proj),
            shard: ShardId(shard),
            rows: 10,
            size_bytes: 100,
            col_minmax: vec![],
        }
    }

    fn shard_defs(n: u64) -> Vec<ShardDef> {
        HashRange::split_even(n as usize)
            .into_iter()
            .enumerate()
            .map(|(i, range)| ShardDef {
                id: ShardId(i as u64),
                kind: ShardKind::Segment,
                range,
            })
            .collect()
    }

    #[test]
    fn create_and_lookup_table() {
        let mut st = CatalogState::default();
        st.apply(&CatalogOp::CreateTable(mk_table(1, "t1")), TxnVersion(1))
            .unwrap();
        assert!(st.table_by_name("t1").is_some());
        assert_eq!(st.version_of(Oid(1)), TxnVersion(1));
        // duplicate name rejected
        assert!(st
            .apply(&CatalogOp::CreateTable(mk_table(2, "t1")), TxnVersion(2))
            .is_err());
    }

    #[test]
    fn drop_table_cascades_containers() {
        let mut st = CatalogState::default();
        st.apply(&CatalogOp::CreateTable(mk_table(1, "t1")), TxnVersion(1))
            .unwrap();
        st.apply(&CatalogOp::AddContainer(mk_container(50, 100, 0)), TxnVersion(2))
            .unwrap();
        st.apply(&CatalogOp::DropTable(Oid(1)), TxnVersion(3)).unwrap();
        assert!(st.containers.is_empty());
        assert!(st.tables.is_empty());
    }

    #[test]
    fn drop_container_cascades_delete_vectors() {
        let mut st = CatalogState::default();
        st.apply(&CatalogOp::AddContainer(mk_container(50, 100, 0)), TxnVersion(1))
            .unwrap();
        st.apply(
            &CatalogOp::AddDeleteVector(DeleteVectorMeta {
                oid: Oid(60),
                key: "dv".into(),
                container: Oid(50),
                shard: ShardId(0),
                deleted_rows: 3,
            }),
            TxnVersion(2),
        )
        .unwrap();
        assert_eq!(st.delete_vectors_for(Oid(50)).len(), 1);
        st.apply(&CatalogOp::DropContainer(Oid(50)), TxnVersion(3))
            .unwrap();
        assert!(st.delete_vectors.is_empty());
    }

    #[test]
    fn delete_vector_requires_container() {
        let mut st = CatalogState::default();
        let dv = DeleteVectorMeta {
            oid: Oid(60),
            key: "dv".into(),
            container: Oid(999),
            shard: ShardId(0),
            deleted_rows: 1,
        };
        assert!(st.apply(&CatalogOp::AddDeleteVector(dv), TxnVersion(1)).is_err());
    }

    #[test]
    fn add_column_extends_schema_and_superprojections() {
        let mut st = CatalogState::default();
        st.apply(&CatalogOp::CreateTable(mk_table(1, "t1")), TxnVersion(1))
            .unwrap();
        st.apply(
            &CatalogOp::AddColumn {
                table: Oid(1),
                field: Field::new("extra", eon_types::DataType::Int),
                default: Value::Int(0),
            },
            TxnVersion(2),
        )
        .unwrap();
        let t = st.table_by_name("t1").unwrap();
        assert_eq!(t.schema.len(), 3);
        assert_eq!(t.defaults[2], Value::Int(0));
        assert_eq!(t.projections[0].1.columns, vec![0, 1, 2]);
        // duplicate column rejected
        assert!(st
            .apply(
                &CatalogOp::AddColumn {
                    table: Oid(1),
                    field: Field::new("extra", eon_types::DataType::Int),
                    default: Value::Null,
                },
                TxnVersion(3),
            )
            .is_err());
    }

    #[test]
    fn subscription_lifecycle_and_queries() {
        let mut st = CatalogState::default();
        st.apply(&CatalogOp::DefineShards(shard_defs(2)), TxnVersion(1))
            .unwrap();
        for (n, sh, state) in [
            (1, 0, SubState::Active),
            (2, 0, SubState::Pending),
            (2, 1, SubState::Active),
            (1, 1, SubState::Removing),
        ] {
            st.apply(
                &CatalogOp::UpsertSubscription(Subscription {
                    node: NodeId(n),
                    shard: ShardId(sh),
                    state,
                }),
                TxnVersion(2),
            )
            .unwrap();
        }
        assert_eq!(st.subscribers_in(ShardId(0), SubState::Active), vec![NodeId(1)]);
        assert_eq!(
            st.serving_subscribers(ShardId(1)),
            vec![NodeId(1), NodeId(2)]
        );
        assert!(st.shards_covered(&[NodeId(1), NodeId(2)]));
        // Without node 1, shard 0 loses its only ACTIVE subscriber.
        assert!(!st.shards_covered(&[NodeId(2)]));

        st.apply(
            &CatalogOp::RemoveSubscription {
                node: NodeId(2),
                shard: ShardId(0),
            },
            TxnVersion(3),
        )
        .unwrap();
        assert_eq!(st.subscriptions_of(NodeId(2)).len(), 1);
    }

    #[test]
    fn retain_shards_drops_foreign_storage() {
        let mut st = CatalogState::default();
        st.apply(&CatalogOp::AddContainer(mk_container(50, 100, 0)), TxnVersion(1))
            .unwrap();
        st.apply(&CatalogOp::AddContainer(mk_container(51, 100, 1)), TxnVersion(1))
            .unwrap();
        st.retain_shards(&[ShardId(1)]);
        assert!(st.containers.contains_key(&Oid(51)));
        assert!(!st.containers.contains_key(&Oid(50)));
    }

    #[test]
    fn snapshot_isolation_via_clone() {
        let mut st = CatalogState::default();
        st.apply(&CatalogOp::CreateTable(mk_table(1, "t1")), TxnVersion(1))
            .unwrap();
        let snapshot = st.clone();
        st.apply(&CatalogOp::DropTable(Oid(1)), TxnVersion(2)).unwrap();
        // Reader's snapshot still sees the table.
        assert!(snapshot.table_by_name("t1").is_some());
        assert!(st.table_by_name("t1").is_none());
    }

    #[test]
    fn define_shards_only_once() {
        let mut st = CatalogState::default();
        st.apply(&CatalogOp::DefineShards(shard_defs(2)), TxnVersion(1))
            .unwrap();
        assert!(st
            .apply(&CatalogOp::DefineShards(shard_defs(3)), TxnVersion(2))
            .is_err());
        assert_eq!(st.segment_shard_count(), 2);
    }
}
