//! The catalog handle: snapshots for readers, OCC commits for writers
//! (paper §2.4, §6.3).
//!
//! Writers `begin()` a [`Txn`], stage [`CatalogOp`]s against the
//! snapshot (recording a *write set* of object versions as they go),
//! then `commit()`. Commit takes the global catalog lock only to
//! validate the write set and swap in the new state — the §6.3 redesign
//! that keeps ROS generation outside the lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use eon_types::{EonError, Oid, Result, TxnVersion};

use crate::log::TxnRecord;
use crate::objects::CatalogOp;
use crate::state::CatalogState;

/// An in-flight transaction.
pub struct Txn {
    base_version: TxnVersion,
    snapshot: Arc<CatalogState>,
    ops: Vec<CatalogOp>,
    /// (object, version observed when staged) — validated at commit.
    write_set: Vec<(Oid, TxnVersion)>,
}

impl Txn {
    /// The consistent snapshot this transaction reads from.
    pub fn snapshot(&self) -> &CatalogState {
        &self.snapshot
    }

    pub fn base_version(&self) -> TxnVersion {
        self.base_version
    }

    pub fn ops(&self) -> &[CatalogOp] {
        &self.ops
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Stage an op. Objects the op *modifies* enter the write set with
    /// the version currently visible in the snapshot; creations enter
    /// with version ZERO (conflict iff someone else created the oid).
    pub fn push(&mut self, op: CatalogOp) {
        for oid in touched_oids(&op) {
            let seen = self.snapshot.version_of(oid);
            if !self.write_set.iter().any(|(o, _)| *o == oid) {
                self.write_set.push((oid, seen));
            }
        }
        self.ops.push(op);
    }

    /// Explicitly add an object to the write set without an op — used
    /// when a decision was *based on* an object that must not change
    /// (e.g. the table whose schema a load read).
    pub fn observe(&mut self, oid: Oid) {
        let seen = self.snapshot.version_of(oid);
        if !self.write_set.iter().any(|(o, _)| *o == oid) {
            self.write_set.push((oid, seen));
        }
    }
}

/// Which object versions an op depends on / modifies.
fn touched_oids(op: &CatalogOp) -> Vec<Oid> {
    match op {
        CatalogOp::DefineShards(_) => vec![],
        CatalogOp::CreateTable(t) => vec![t.oid],
        CatalogOp::DropTable(o) => vec![*o],
        CatalogOp::AddProjection { table, oid, .. } => vec![*table, *oid],
        CatalogOp::AddColumn { table, .. } => vec![*table],
        CatalogOp::AddContainer(c) => vec![c.oid],
        CatalogOp::DropContainer(o) => vec![*o],
        CatalogOp::AddDeleteVector(d) => vec![d.oid, d.container],
        CatalogOp::DropDeleteVector(o) => vec![*o],
        // Subscription and coordinator changes are last-writer-wins
        // control state, not OCC-validated data.
        CatalogOp::UpsertSubscription(_)
        | CatalogOp::RemoveSubscription { .. }
        | CatalogOp::SetMergeoutCoordinator { .. } => vec![],
    }
}

struct Inner {
    state: Arc<CatalogState>,
    version: TxnVersion,
}

/// The node-local catalog instance.
pub struct Catalog {
    inner: Mutex<Inner>,
    oid_counter: AtomicU64,
    /// High bits of every OID this catalog mints. Each node uses its
    /// own namespace so concurrent transactions coordinated by
    /// different nodes can never allocate colliding OIDs (the same
    /// reason SIDs embed the node instance id, §5.1).
    oid_namespace: AtomicU64,
}

/// Bit position of the OID namespace within an OID.
const OID_NS_SHIFT: u32 = 48;
const OID_LOCAL_MASK: u64 = (1 << OID_NS_SHIFT) - 1;

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            inner: Mutex::new(Inner {
                state: Arc::new(CatalogState::default()),
                version: TxnVersion::ZERO,
            }),
            oid_counter: AtomicU64::new(1),
            oid_namespace: AtomicU64::new(0),
        }
    }

    /// Assign this catalog's OID namespace (call once at node start).
    pub fn set_oid_namespace(&self, ns: u64) {
        self.oid_namespace.store(ns, Ordering::Relaxed);
    }

    /// Current consistent snapshot (readers hold it as long as needed).
    pub fn snapshot(&self) -> Arc<CatalogState> {
        self.inner.lock().state.clone()
    }

    /// The global catalog version (§3.4).
    pub fn version(&self) -> TxnVersion {
        self.inner.lock().version
    }

    /// Allocate a fresh catalog OID (the "local id" of the SID scheme).
    pub fn next_oid(&self) -> Oid {
        let ns = self.oid_namespace.load(Ordering::Relaxed);
        Oid((ns << OID_NS_SHIFT) | self.oid_counter.fetch_add(1, Ordering::Relaxed))
    }

    /// Make the OID counter skip past `floor` if it belongs to this
    /// catalog's namespace (after recovery, so new OIDs don't collide
    /// with ones a previous incarnation of this node minted). OIDs from
    /// other namespaces are ignored — they can never collide with ours.
    pub fn bump_oid_floor(&self, floor: u64) {
        let ns = self.oid_namespace.load(Ordering::Relaxed);
        if floor >> OID_NS_SHIFT == ns {
            self.oid_counter
                .fetch_max((floor & OID_LOCAL_MASK) + 1, Ordering::Relaxed);
        }
    }

    /// Begin a transaction against the current snapshot.
    pub fn begin(&self) -> Txn {
        let g = self.inner.lock();
        Txn {
            base_version: g.version,
            snapshot: g.state.clone(),
            ops: Vec::new(),
            write_set: Vec::new(),
        }
    }

    /// OCC commit: validate the write set under the catalog lock, apply
    /// to a scratch clone, swap. Returns the record the caller must
    /// persist/distribute.
    pub fn commit(&self, txn: Txn) -> Result<TxnRecord> {
        let mut g = self.inner.lock();
        // Validation (§6.3): every object in the write set must still be
        // at the version the transaction observed.
        for (oid, seen) in &txn.write_set {
            let now = g.state.version_of(*oid);
            if now != *seen {
                return Err(EonError::WriteConflict(format!(
                    "{oid} changed ({seen} -> {now}) since transaction began"
                )));
            }
        }
        let next = g.version.next();
        let mut scratch = (*g.state).clone();
        for op in &txn.ops {
            scratch.apply(op, next)?;
        }
        g.state = Arc::new(scratch);
        g.version = next;
        Ok(TxnRecord {
            version: next,
            ops: txn.ops,
        })
    }

    /// Apply a record committed elsewhere (peer distribution or log
    /// replay). Versions must arrive in order with no gaps.
    pub fn apply_committed(&self, record: &TxnRecord) -> Result<()> {
        let mut g = self.inner.lock();
        if record.version != g.version.next() {
            return Err(EonError::Catalog(format!(
                "out-of-order log record {} applied at {}",
                record.version, g.version
            )));
        }
        let mut scratch = (*g.state).clone();
        for op in &record.ops {
            scratch.apply(op, record.version)?;
        }
        g.state = Arc::new(scratch);
        g.version = record.version;
        drop(g);
        // Keep this node's OID counter ahead of any same-namespace OID
        // it has seen (relevant after this node restarts and its peers
        // replay records the old process minted).
        for oid in record.ops.iter().flat_map(touched_oids) {
            self.bump_oid_floor(oid.0);
        }
        Ok(())
    }

    /// Apply a consecutive run of records committed elsewhere with
    /// **one** scratch clone — the group-commit distribution path, which
    /// amortizes the copy-on-write cost [`Self::apply_committed`] pays
    /// per record. All-or-nothing: the swap happens only after every
    /// record applies, so a failure leaves the catalog at its prior
    /// version (same contract a single failed `apply_committed` has).
    pub fn apply_committed_batch(&self, records: &[TxnRecord]) -> Result<()> {
        let Some(first) = records.first() else {
            return Ok(());
        };
        let mut g = self.inner.lock();
        if first.version != g.version.next() {
            return Err(EonError::Catalog(format!(
                "out-of-order log record {} applied at {}",
                first.version, g.version
            )));
        }
        let mut scratch = (*g.state).clone();
        let mut version = g.version;
        for record in records {
            if record.version != version.next() {
                return Err(EonError::Catalog(format!(
                    "gap in batch: record {} after {}",
                    record.version, version
                )));
            }
            for op in &record.ops {
                scratch.apply(op, record.version)?;
            }
            version = record.version;
        }
        g.state = Arc::new(scratch);
        g.version = version;
        drop(g);
        for oid in records
            .iter()
            .flat_map(|r| r.ops.iter())
            .flat_map(touched_oids)
        {
            self.bump_oid_floor(oid.0);
        }
        Ok(())
    }

    /// Install a recovered snapshot (checkpoint load, revive, metadata
    /// transfer from a peer).
    pub fn install(&self, state: CatalogState, version: TxnVersion) {
        let mut g = self.inner.lock();
        g.state = Arc::new(state);
        g.version = version;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::Table;
    use eon_types::{schema, Value};

    fn table_op(cat: &Catalog, name: &str) -> (Oid, CatalogOp) {
        let oid = cat.next_oid();
        let s = schema![("a", Int)];
        (
            oid,
            CatalogOp::CreateTable(Table {
                oid,
                name: name.into(),
                schema: s,
                projections: vec![],
                defaults: vec![Value::Null],
            }),
        )
    }

    #[test]
    fn commit_advances_version() {
        let cat = Catalog::new();
        let mut t = cat.begin();
        let (_, op) = table_op(&cat, "t1");
        t.push(op);
        let rec = cat.commit(t).unwrap();
        assert_eq!(rec.version, TxnVersion(1));
        assert_eq!(cat.version(), TxnVersion(1));
        assert!(cat.snapshot().table_by_name("t1").is_some());
    }

    #[test]
    fn occ_conflict_detected() {
        let cat = Catalog::new();
        let (oid, op) = table_op(&cat, "t1");
        let mut t0 = cat.begin();
        t0.push(op);
        cat.commit(t0).unwrap();

        // Two concurrent transactions both drop the same table.
        let mut a = cat.begin();
        a.push(CatalogOp::DropTable(oid));
        let mut b = cat.begin();
        b.push(CatalogOp::DropTable(oid));
        cat.commit(a).unwrap();
        assert!(matches!(cat.commit(b), Err(EonError::WriteConflict(_))));
    }

    #[test]
    fn observe_guards_read_dependencies() {
        let cat = Catalog::new();
        let (oid, op) = table_op(&cat, "t1");
        let mut t0 = cat.begin();
        t0.push(op);
        cat.commit(t0).unwrap();

        // Transaction b reads table t1 (observes it) while a drops it.
        let mut b = cat.begin();
        b.observe(oid);
        b.push(CatalogOp::SetMergeoutCoordinator {
            shard: eon_types::ShardId(0),
            node: eon_types::NodeId(1),
        });
        let mut a = cat.begin();
        a.push(CatalogOp::DropTable(oid));
        cat.commit(a).unwrap();
        assert!(matches!(cat.commit(b), Err(EonError::WriteConflict(_))));
    }

    #[test]
    fn non_conflicting_txns_both_commit() {
        let cat = Catalog::new();
        let mut a = cat.begin();
        let (_, op_a) = table_op(&cat, "ta");
        a.push(op_a);
        let mut b = cat.begin();
        let (_, op_b) = table_op(&cat, "tb");
        b.push(op_b);
        cat.commit(a).unwrap();
        cat.commit(b).unwrap();
        assert_eq!(cat.version(), TxnVersion(2));
        assert!(cat.snapshot().table_by_name("ta").is_some());
        assert!(cat.snapshot().table_by_name("tb").is_some());
    }

    #[test]
    fn failed_apply_rolls_back_cleanly() {
        let cat = Catalog::new();
        let (_, op) = table_op(&cat, "dup");
        let mut t0 = cat.begin();
        t0.push(op);
        cat.commit(t0).unwrap();
        // Fresh oid but duplicate name: apply fails; state and version
        // must be unchanged.
        let mut t1 = cat.begin();
        let (_, op2) = table_op(&cat, "dup");
        t1.push(op2);
        assert!(cat.commit(t1).is_err());
        assert_eq!(cat.version(), TxnVersion(1));
        assert_eq!(cat.snapshot().tables.len(), 1);
    }

    #[test]
    fn apply_committed_replicates_in_order() {
        let src = Catalog::new();
        let dst = Catalog::new();
        let mut recs = Vec::new();
        for name in ["t1", "t2", "t3"] {
            let mut t = src.begin();
            let (_, op) = table_op(&src, name);
            t.push(op);
            recs.push(src.commit(t).unwrap());
        }
        // Out of order rejected.
        assert!(dst.apply_committed(&recs[1]).is_err());
        for r in &recs {
            dst.apply_committed(r).unwrap();
        }
        assert_eq!(dst.version(), src.version());
        assert_eq!(*dst.snapshot(), *src.snapshot());
    }

    #[test]
    fn apply_committed_batch_matches_serial_application() {
        let src = Catalog::new();
        let serial = Catalog::new();
        let batched = Catalog::new();
        let recs: Vec<TxnRecord> = ["t1", "t2", "t3"]
            .iter()
            .map(|name| {
                let mut t = src.begin();
                let (_, op) = table_op(&src, name);
                t.push(op);
                src.commit(t).unwrap()
            })
            .collect();
        for r in &recs {
            serial.apply_committed(r).unwrap();
        }
        batched.apply_committed_batch(&recs).unwrap();
        assert_eq!(batched.version(), serial.version());
        assert_eq!(*batched.snapshot(), *serial.snapshot());
        // Out-of-order batch rejected without mutating state.
        assert!(batched.apply_committed_batch(&recs).is_err());
        assert_eq!(batched.version(), TxnVersion(3));
        // Empty batch is a no-op.
        batched.apply_committed_batch(&[]).unwrap();
        assert_eq!(batched.version(), TxnVersion(3));
    }

    #[test]
    fn snapshot_stable_across_commits() {
        let cat = Catalog::new();
        let snap0 = cat.snapshot();
        let mut t = cat.begin();
        let (_, op) = table_op(&cat, "t1");
        t.push(op);
        cat.commit(t).unwrap();
        assert!(snap0.tables.is_empty());
        assert_eq!(cat.snapshot().tables.len(), 1);
    }
}
