//! The Vertica catalog, re-architected for Eon mode (paper §2.4, §3.5,
//! §6.3).
//!
//! * [`objects`] — the catalog object model: *global* objects (tables,
//!   projections, shard definitions, subscriptions) present in every
//!   node's catalog, and *storage* objects (ROS containers, delete
//!   vectors) that only a shard's subscribers carry.
//! * [`state`] — the in-memory catalog: consistent snapshots for
//!   readers (`Arc`-shared, copy-on-write at commit) and the op-apply
//!   machinery.
//! * [`txn`] — transactions with Optimistic Concurrency Control: write
//!   sets validated against object versions at commit (§6.3).
//! * [`log`] — transaction-log records and checkpoints, totally ordered
//!   by the incrementing version counter; two checkpoints retained.
//! * [`store`] — persistence: local append + asynchronous upload to
//!   shared storage, sync intervals, recovery replay (§3.5).
//! * [`cluster_info`] — the `cluster_info.json` commit point for revive:
//!   truncation version, incarnation id, lease (§3.5).

pub mod cluster_info;
pub mod log;
pub mod objects;
pub mod state;
pub mod store;
pub mod txn;

pub use cluster_info::ClusterInfo;
pub use log::{Checkpoint, TxnRecord};
pub use objects::{
    CatalogOp, ContainerMeta, DeleteVectorMeta, ShardDef, ShardKind, SubState, Subscription,
    Table,
};
pub use state::CatalogState;
pub use store::{CatalogStore, SyncInterval};
pub use txn::{Catalog, Txn};
