//! Catalog object model and the operation (redo) language.
//!
//! Transaction logs "contain only metadata as the data files are
//! written prior to commit" (§2.4) — so a [`CatalogOp`] never carries
//! tuple data, only object descriptions and shared-storage keys.

use serde::{Deserialize, Serialize};

use eon_columnar::Projection;
use eon_types::{HashRange, NodeId, Oid, Schema, ShardId, Value};

/// Whether a shard holds segmented or replicated storage (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardKind {
    /// Owns a region of the 32-bit hash space.
    Segment,
    /// Holds metadata for replicated projections; every node may
    /// subscribe.
    Replica,
}

/// A shard definition: fixed at database creation (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardDef {
    pub id: ShardId,
    pub kind: ShardKind,
    /// Hash region for segment shards; the full space for the replica
    /// shard (it is never consulted).
    pub range: HashRange,
}

/// Subscription state machine (§3.3, Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubState {
    /// Declared; metadata transfer in progress.
    Pending,
    /// Metadata complete: participates in commits, promotable.
    Passive,
    /// Serving queries.
    Active,
    /// Draining; still serves queries until enough other subscribers
    /// exist.
    Removing,
}

/// A node's subscription to a shard — itself a *global* catalog object
/// so every node can compute participating sets consistently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subscription {
    pub node: NodeId,
    pub shard: ShardId,
    pub state: SubState,
}

/// A table with its projections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    pub oid: Oid,
    pub name: String,
    pub schema: Schema,
    /// (projection oid, definition)
    pub projections: Vec<(Oid, Projection)>,
    /// Per-column default values, aligned with `schema.fields`. Columns
    /// added by ALTER TABLE (§6.3) record their default here so
    /// containers written *before* the ADD COLUMN can be scanned — the
    /// missing column materializes as the default.
    #[serde(default)]
    pub defaults: Vec<Value>,
}

impl Table {
    pub fn projection(&self, oid: Oid) -> Option<&Projection> {
        self.projections
            .iter()
            .find(|(o, _)| *o == oid)
            .map(|(_, p)| p)
    }
}

/// A ROS container as the catalog sees it: a pointer to an immutable
/// shared-storage object plus planning statistics. Storage-scoped: only
/// subscribers of `shard` carry it (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerMeta {
    pub oid: Oid,
    /// Shared-storage object key (from the SID scheme, §5.1).
    pub key: String,
    pub table: Oid,
    pub projection: Oid,
    pub shard: ShardId,
    pub rows: u64,
    pub size_bytes: u64,
    /// Per-column (min, max) for container-level pruning; `None` where
    /// a column slice is all-null.
    pub col_minmax: Vec<Option<(Value, Value)>>,
}

/// A delete vector as the catalog sees it (§2.3): positions are in the
/// object at `key`; `container` is the storage it tombstones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteVectorMeta {
    pub oid: Oid,
    pub key: String,
    pub container: Oid,
    pub shard: ShardId,
    pub deleted_rows: u64,
}

/// The redo-log operation language. Applying the ops of a commit to a
/// catalog snapshot at version *v* yields the snapshot at *v+1*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CatalogOp {
    /// Database bootstrap: define the shard layout (once).
    DefineShards(Vec<ShardDef>),
    CreateTable(Table),
    DropTable(Oid),
    AddProjection {
        table: Oid,
        oid: Oid,
        projection: Projection,
    },
    /// ALTER TABLE ADD COLUMN with a default value (§6.3). Existing
    /// projections grow the column; new containers carry the default.
    AddColumn {
        table: Oid,
        field: eon_types::Field,
        default: Value,
    },
    AddContainer(ContainerMeta),
    DropContainer(Oid),
    AddDeleteVector(DeleteVectorMeta),
    DropDeleteVector(Oid),
    /// Create or update a node↔shard subscription (state transitions of
    /// Fig 4 are successive Upserts).
    UpsertSubscription(Subscription),
    RemoveSubscription {
        node: NodeId,
        shard: ShardId,
    },
    /// Select the mergeout coordinator for a shard (§6.2).
    SetMergeoutCoordinator {
        shard: ShardId,
        node: NodeId,
    },
}

impl CatalogOp {
    /// The shard whose subscribers must carry this op, or `None` for
    /// global objects that every node's catalog holds (§3.1).
    pub fn shard_scope(&self) -> Option<ShardId> {
        match self {
            CatalogOp::AddContainer(c) => Some(c.shard),
            CatalogOp::AddDeleteVector(d) => Some(d.shard),
            // Drops are resolved against local state; treat as global so
            // every holder of the object observes the drop.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_types::schema;

    #[test]
    fn op_shard_scope() {
        let c = ContainerMeta {
            oid: Oid(1),
            key: "k".into(),
            table: Oid(2),
            projection: Oid(3),
            shard: ShardId(7),
            rows: 0,
            size_bytes: 0,
            col_minmax: vec![],
        };
        assert_eq!(CatalogOp::AddContainer(c).shard_scope(), Some(ShardId(7)));
        assert_eq!(CatalogOp::DropTable(Oid(1)).shard_scope(), None);
    }

    #[test]
    fn table_projection_lookup() {
        let s = schema![("a", Int)];
        let t = Table {
            oid: Oid(1),
            name: "t".into(),
            schema: s.clone(),
            projections: vec![(
                Oid(10),
                Projection::super_projection("p", &s, &[0], &[0]),
            )],
            defaults: vec![Value::Null],
        };
        assert!(t.projection(Oid(10)).is_some());
        assert!(t.projection(Oid(11)).is_none());
    }

    #[test]
    fn ops_serialize_roundtrip() {
        let op = CatalogOp::UpsertSubscription(Subscription {
            node: NodeId(1),
            shard: ShardId(2),
            state: SubState::Active,
        });
        let j = serde_json::to_string(&op).unwrap();
        let back: CatalogOp = serde_json::from_str(&j).unwrap();
        assert_eq!(back, op);
    }
}
