//! `cluster_info.json` (paper §3.5): the commit point for revive.
//!
//! A running cluster's elected leader periodically writes this file with
//! the consensus truncation version, a lease, and the incarnation id.
//! Revive reads it to learn where to truncate and refuses to start while
//! the lease is live (another cluster is probably running); writing a
//! new `cluster_info.json` with a fresh incarnation id *is* the atomic
//! commit of a revive.

use eon_types::{EonError, Result, TxnVersion};
use serde::{Deserialize, Serialize};

use eon_storage::FileSystem;

/// The shared-storage key. A single well-known object, deliberately not
/// SID-named: there is exactly one per database.
pub const CLUSTER_INFO_KEY: &str = "cluster_info.json";

/// Contents of `cluster_info.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterInfo {
    /// Consensus truncation version: the highest version consistent
    /// with respect to every shard (Fig 5).
    pub truncation_version: TxnVersion,
    /// Incarnation id of the cluster that wrote this (hex).
    pub incarnation: String,
    /// Database name, for operator sanity.
    pub database: String,
    /// Wall-clock write time, milliseconds since the epoch.
    pub timestamp_ms: u64,
    /// Lease expiry: revive aborts before this instant (§3.5).
    pub lease_until_ms: u64,
    /// Node ids of the writing cluster.
    pub nodes: Vec<u64>,
}

impl ClusterInfo {
    /// Read from shared storage; `Ok(None)` when no cluster has ever
    /// written one (fresh database).
    pub fn read(fs: &dyn FileSystem) -> Result<Option<ClusterInfo>> {
        match fs.read(CLUSTER_INFO_KEY) {
            Ok(data) => {
                let info = serde_json::from_slice(&data)
                    .map_err(|e| EonError::Corrupt(format!("bad cluster_info.json: {e}")))?;
                Ok(Some(info))
            }
            Err(EonError::NotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Write (replacing any previous version — this is the one object
    /// the engine intentionally overwrites).
    pub fn write(&self, fs: &dyn FileSystem) -> Result<()> {
        let data = serde_json::to_vec_pretty(self)
            .map_err(|e| EonError::Internal(e.to_string()))?;
        fs.write(CLUSTER_INFO_KEY, bytes::Bytes::from(data))
    }

    /// Is the lease still held at `now_ms`?
    pub fn lease_live(&self, now_ms: u64) -> bool {
        now_ms < self.lease_until_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_storage::MemFs;

    fn info() -> ClusterInfo {
        ClusterInfo {
            truncation_version: TxnVersion(42),
            incarnation: "abc123".into(),
            database: "tpch".into(),
            timestamp_ms: 1_000,
            lease_until_ms: 2_000,
            nodes: vec![1, 2, 3],
        }
    }

    #[test]
    fn roundtrip_via_shared_storage() {
        let fs = MemFs::new();
        assert_eq!(ClusterInfo::read(&fs).unwrap(), None);
        info().write(&fs).unwrap();
        assert_eq!(ClusterInfo::read(&fs).unwrap(), Some(info()));
    }

    #[test]
    fn lease_check() {
        let i = info();
        assert!(i.lease_live(1_500));
        assert!(!i.lease_live(2_000));
        assert!(!i.lease_live(9_999));
    }

    #[test]
    fn overwrite_updates_commit_point() {
        let fs = MemFs::new();
        info().write(&fs).unwrap();
        let mut next = info();
        next.incarnation = "def456".into();
        next.truncation_version = TxnVersion(50);
        next.write(&fs).unwrap();
        let got = ClusterInfo::read(&fs).unwrap().unwrap();
        assert_eq!(got.incarnation, "def456");
        assert_eq!(got.truncation_version, TxnVersion(50));
    }

    #[test]
    fn corrupt_file_is_error() {
        let fs = MemFs::new();
        fs.write(CLUSTER_INFO_KEY, bytes::Bytes::from_static(b"}{"))
            .unwrap();
        assert!(ClusterInfo::read(&fs).is_err());
    }
}
