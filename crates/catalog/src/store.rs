//! Catalog persistence (paper §3.5): local-first durability with
//! asynchronous upload to shared storage.
//!
//! "Each node writes transaction logs to local storage, then
//! independently uploads them to shared storage on a regular,
//! configurable interval." The store tracks the node's **sync
//! interval** — the range of versions it could revive to from what it
//! has uploaded: checkpoints raise the lower bound, uploaded logs raise
//! the upper bound.

use eon_types::{EonError, Result, TxnVersion};
use parking_lot::Mutex;

use eon_storage::fault::{site, FaultPlan};
use eon_storage::{FaultInjector, SharedFs};

use crate::log::{
    ckpt_key, decode_log_file, encode_batch, txn_batch_key, txn_key, version_of_key,
    version_range_of_key, Checkpoint, TxnRecord,
};
use crate::state::CatalogState;

/// The range of versions a node can revive to from shared storage
/// (§3.5): `[oldest uploaded checkpoint, newest uploaded log]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncInterval {
    pub lo: TxnVersion,
    pub hi: TxnVersion,
}

/// How many checkpoints to retain (§2.4: "Vertica retains two
/// checkpoints, any prior checkpoints and transaction logs can be
/// deleted").
const CHECKPOINTS_RETAINED: usize = 2;

/// Persistence for one node's catalog.
pub struct CatalogStore {
    /// Node-local durable storage (commit writes land here first).
    local: SharedFs,
    /// The cluster's shared storage.
    shared: SharedFs,
    /// Shared-storage prefix, qualified by the cluster incarnation id
    /// (§3.5: "metadata files uploaded to shared storage are qualified
    /// with the incarnation id").
    shared_prefix: String,
    /// Highest version uploaded to shared storage.
    uploaded_hi: Mutex<TxnVersion>,
    /// Crash-point plan threaded down from the database config
    /// (DESIGN.md "Fault model"); inert unless a chaos test arms it.
    faults: Mutex<FaultInjector>,
}

const LOCAL_PREFIX: &str = "catalog/";

impl CatalogStore {
    pub fn new(local: SharedFs, shared: SharedFs, incarnation: &str) -> Self {
        CatalogStore {
            local,
            shared,
            shared_prefix: format!("meta/{incarnation}/"),
            uploaded_hi: Mutex::new(TxnVersion::ZERO),
            faults: Mutex::new(FaultPlan::inert()),
        }
    }

    /// Install the crash-point plan (called when the owning node is
    /// commissioned or restarted).
    pub fn set_faults(&self, faults: FaultInjector) {
        *self.faults.lock() = faults;
    }

    pub fn shared_prefix(&self) -> &str {
        &self.shared_prefix
    }

    /// Append a committed record to the local redo log (the §3.5 commit
    /// durability point: "process termination results in reading the
    /// local transaction logs and no loss of transactions").
    pub fn append_local(&self, record: &TxnRecord) -> Result<()> {
        self.local
            .write(&txn_key(LOCAL_PREFIX, record.version), record.encode())
    }

    /// Append a group-commit batch as **one** local log file (one write
    /// = one durability point for the whole batch: after a crash either
    /// every record in the file is replayable or none is, which is how
    /// the prefix-or-nothing batch invariant is kept). Records must be
    /// consecutive versions in order; a singleton batch degenerates to
    /// the plain single-record file so the log shape is identical to
    /// serial commit.
    pub fn append_local_batch(&self, records: &[TxnRecord]) -> Result<()> {
        match records {
            [] => Ok(()),
            [one] => self.append_local(one),
            many => {
                let (lo, hi) = (many[0].version, many[many.len() - 1].version);
                debug_assert_eq!(hi.0 - lo.0 + 1, many.len() as u64);
                self.local
                    .write(&txn_batch_key(LOCAL_PREFIX, lo, hi), encode_batch(many))
            }
        }
    }

    /// Write a checkpoint locally and prune old checkpoints + the log
    /// records they subsume, retaining [`CHECKPOINTS_RETAINED`].
    pub fn write_checkpoint(&self, ckpt: &Checkpoint) -> Result<()> {
        self.faults.lock().hit(site::CKPT_PRE_WRITE)?;
        self.local
            .write(&ckpt_key(LOCAL_PREFIX, ckpt.version), ckpt.encode())?;
        let mut ckpts = self.local.list(&format!("{LOCAL_PREFIX}ckpt/"))?;
        ckpts.sort();
        if ckpts.len() > CHECKPOINTS_RETAINED {
            let drop_upto = ckpts[ckpts.len() - CHECKPOINTS_RETAINED].clone();
            let floor = version_of_key(&drop_upto).unwrap_or(TxnVersion::ZERO);
            for k in &ckpts[..ckpts.len() - CHECKPOINTS_RETAINED] {
                self.local.delete(k)?;
            }
            // Logs at or before the oldest retained checkpoint are
            // subsumed by it. A batch file straddling the floor is kept
            // whole — replay from the checkpoint skips its subsumed
            // prefix.
            for k in self.local.list(&format!("{LOCAL_PREFIX}txn/"))? {
                if version_range_of_key(&k).map(|(_, hi)| hi <= floor).unwrap_or(false) {
                    self.local.delete(&k)?;
                }
            }
        }
        Ok(())
    }

    /// Upload everything local that shared storage lacks (the periodic
    /// sync, §3.5, and the flush on clean shutdown). Returns the new
    /// sync interval.
    pub fn sync_to_shared(&self) -> Result<SyncInterval> {
        self.faults.lock().hit(site::SYNC_PRE_UPLOAD)?;
        for kind in ["ckpt/", "txn/"] {
            let local_keys = self.local.list(&format!("{LOCAL_PREFIX}{kind}"))?;
            let shared_keys = self.shared.list(&format!("{}{kind}", self.shared_prefix))?;
            for lk in local_keys {
                let suffix = lk.trim_start_matches(LOCAL_PREFIX);
                let sk = format!("{}{suffix}", self.shared_prefix);
                if !shared_keys.contains(&sk) {
                    // A crash here leaves the sync interval partially
                    // advanced: some files uploaded, later ones not.
                    self.faults.lock().hit(site::SYNC_MID_UPLOAD)?;
                    let data = self.local.read(&lk)?;
                    // §5.3 retry loop: uploads must survive transient
                    // S3 failures or the sync interval never advances.
                    eon_storage::with_retry(&eon_storage::RetryPolicy::default(), || {
                        self.shared.write(&sk, data.clone())
                    })?;
                }
                if kind == "txn/" {
                    if let Some((_, v)) = version_range_of_key(&lk) {
                        let mut hi = self.uploaded_hi.lock();
                        if v > *hi {
                            *hi = v;
                        }
                    }
                }
            }
        }
        self.sync_interval()
    }

    /// The current sync interval as recorded on shared storage.
    pub fn sync_interval(&self) -> Result<SyncInterval> {
        let ckpts = self.shared.list(&format!("{}ckpt/", self.shared_prefix))?;
        let txns = self.shared.list(&format!("{}txn/", self.shared_prefix))?;
        let lo = ckpts
            .iter()
            .filter_map(|k| version_of_key(k))
            .min()
            .unwrap_or(TxnVersion::ZERO);
        let hi = txns
            .iter()
            .filter_map(|k| version_range_of_key(k).map(|(_, hi)| hi))
            .max()
            .unwrap_or(lo)
            .max(
                ckpts
                    .iter()
                    .filter_map(|k| version_of_key(k))
                    .max()
                    .unwrap_or(TxnVersion::ZERO),
            );
        Ok(SyncInterval { lo, hi })
    }

    /// Startup recovery from *local* storage (§2.4): newest valid
    /// checkpoint, then replay subsequent logs.
    pub fn recover_local(&self) -> Result<(CatalogState, TxnVersion)> {
        Self::recover_from(self.local.as_ref(), LOCAL_PREFIX, None)
    }

    /// Revive recovery from *shared* storage, truncating at
    /// `truncation` (§3.5): use the newest checkpoint at or below the
    /// truncation version, replay logs up to it, discard the rest.
    pub fn recover_from_shared(
        &self,
        truncation: TxnVersion,
    ) -> Result<(CatalogState, TxnVersion)> {
        Self::recover_from(self.shared.as_ref(), &self.shared_prefix, Some(truncation))
    }

    fn recover_from(
        fs: &dyn eon_storage::FileSystem,
        prefix: &str,
        upto: Option<TxnVersion>,
    ) -> Result<(CatalogState, TxnVersion)> {
        let in_range = |v: TxnVersion| upto.map(|u| v <= u).unwrap_or(true);
        // Newest usable checkpoint.
        let mut ckpts: Vec<(TxnVersion, String)> = fs
            .list(&format!("{prefix}ckpt/"))?
            .into_iter()
            .filter_map(|k| version_of_key(&k).map(|v| (v, k)))
            .filter(|(v, _)| in_range(*v))
            .collect();
        ckpts.sort();
        let (mut state, mut version) = match ckpts.last() {
            Some((v, key)) => {
                let ck = Checkpoint::decode(&fs.read(key)?)?;
                if ck.version != *v {
                    return Err(EonError::Corrupt(format!(
                        "checkpoint {key} labelled {v} contains {}",
                        ck.version
                    )));
                }
                (ck.state, ck.version)
            }
            None => (CatalogState::default(), TxnVersion::ZERO),
        };
        // Replay logs after the checkpoint, in version order, stopping
        // at the first gap (later records cannot be applied soundly).
        // A log file may be a single record or a group-commit batch;
        // batch files straddling the checkpoint or the truncation point
        // contribute only their in-range records.
        let mut logs: Vec<(TxnVersion, TxnVersion, String)> = fs
            .list(&format!("{prefix}txn/"))?
            .into_iter()
            .filter_map(|k| version_range_of_key(&k).map(|(lo, hi)| (lo, hi, k)))
            .filter(|(lo, hi, _)| *hi > version && upto.map(|u| *lo <= u).unwrap_or(true))
            .collect();
        logs.sort();
        'files: for (_, _, key) in logs {
            for rec in decode_log_file(&fs.read(&key)?)? {
                let v = rec.version;
                if v <= version {
                    continue; // subsumed by the checkpoint
                }
                if !in_range(v) || v != version.next() {
                    break 'files;
                }
                for op in &rec.ops {
                    state.apply(op, v)?;
                }
                version = v;
            }
        }
        Ok((state, version))
    }

    /// Committed records with version greater than `after`, in order —
    /// served to a recovering peer during re-subscription (§3.3's
    /// "transferring checkpoint and/or transaction logs from source to
    /// destination"). Stops at the first gap; an empty result with a
    /// non-trivial `after` may mean the logs were pruned by
    /// checkpointing, in which case the peer ships a full snapshot.
    pub fn read_records_after(&self, after: TxnVersion) -> Result<Vec<TxnRecord>> {
        let mut found: Vec<(TxnVersion, TxnVersion, String)> = self
            .local
            .list(&format!("{LOCAL_PREFIX}txn/"))?
            .into_iter()
            .filter_map(|k| version_range_of_key(&k).map(|(lo, hi)| (lo, hi, k)))
            .filter(|(_, hi, _)| *hi > after)
            .collect();
        found.sort();
        let mut out = Vec::with_capacity(found.len());
        let mut expect = after.next();
        'files: for (_, _, key) in found {
            for rec in decode_log_file(&self.local.read(&key)?)? {
                if rec.version <= after {
                    continue; // batch prefix the peer already has
                }
                if rec.version != expect {
                    break 'files;
                }
                expect = rec.version.next();
                out.push(rec);
            }
        }
        Ok(out)
    }

    /// Truncate *local* catalog files above `truncation` and write a new
    /// checkpoint for the recovered state — the per-node step of revive
    /// (§3.5: "each node reads its catalog, truncates all commits
    /// subsequent to the truncation version, and writes a new
    /// checkpoint").
    pub fn truncate_local(&self, truncation: TxnVersion, state: &CatalogState) -> Result<()> {
        for kind in ["txn/", "ckpt/"] {
            for k in self.local.list(&format!("{LOCAL_PREFIX}{kind}"))? {
                let Some((lo, hi)) = version_range_of_key(&k) else {
                    continue;
                };
                if lo > truncation {
                    self.local.delete(&k)?;
                } else if hi > truncation {
                    // A batch straddling the truncation point: rewrite
                    // it to its surviving prefix so local recovery can
                    // never resurrect truncated commits.
                    let keep: Vec<TxnRecord> = decode_log_file(&self.local.read(&k)?)?
                        .into_iter()
                        .filter(|r| r.version <= truncation)
                        .collect();
                    self.local.delete(&k)?;
                    self.append_local_batch(&keep)?;
                }
            }
        }
        self.write_checkpoint(&Checkpoint {
            version: truncation,
            state: state.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{CatalogOp, Table};
    use crate::txn::Catalog;
    use eon_storage::MemFs;
    use eon_types::{schema, Value};
    use std::sync::Arc;

    fn fses() -> (SharedFs, SharedFs) {
        (Arc::new(MemFs::new()), Arc::new(MemFs::new()))
    }

    fn commit_table(cat: &Catalog, store: &CatalogStore, name: &str) -> TxnRecord {
        let mut t = cat.begin();
        let oid = cat.next_oid();
        t.push(CatalogOp::CreateTable(Table {
            oid,
            name: name.into(),
            schema: schema![("a", Int)],
            projections: vec![],
            defaults: vec![Value::Null],
        }));
        let rec = cat.commit(t).unwrap();
        store.append_local(&rec).unwrap();
        rec
    }

    /// Commit `names` as consecutive versions and durably append them
    /// as one batch log file (the group-commit shape).
    fn commit_batch(cat: &Catalog, store: &CatalogStore, names: &[&str]) -> Vec<TxnRecord> {
        let recs: Vec<TxnRecord> = names
            .iter()
            .map(|name| {
                let mut t = cat.begin();
                let oid = cat.next_oid();
                t.push(CatalogOp::CreateTable(Table {
                    oid,
                    name: (*name).into(),
                    schema: schema![("a", Int)],
                    projections: vec![],
                    defaults: vec![Value::Null],
                }));
                cat.commit(t).unwrap()
            })
            .collect();
        store.append_local_batch(&recs).unwrap();
        recs
    }

    #[test]
    fn local_recovery_replays_logs() {
        let (local, shared) = fses();
        let store = CatalogStore::new(local, shared, "inc0");
        let cat = Catalog::new();
        for n in ["t1", "t2", "t3"] {
            commit_table(&cat, &store, n);
        }
        let (state, version) = store.recover_local().unwrap();
        assert_eq!(version, TxnVersion(3));
        assert_eq!(state.tables.len(), 3);
    }

    #[test]
    fn recovery_from_checkpoint_plus_tail() {
        let (local, shared) = fses();
        let store = CatalogStore::new(local, shared, "inc0");
        let cat = Catalog::new();
        commit_table(&cat, &store, "t1");
        commit_table(&cat, &store, "t2");
        store
            .write_checkpoint(&Checkpoint {
                version: cat.version(),
                state: (*cat.snapshot()).clone(),
            })
            .unwrap();
        commit_table(&cat, &store, "t3");
        let (state, version) = store.recover_local().unwrap();
        assert_eq!(version, TxnVersion(3));
        assert!(state.table_by_name("t3").is_some());
    }

    #[test]
    fn checkpoint_retention_prunes_old_files() {
        let (local, shared) = fses();
        let local2 = local.clone();
        let store = CatalogStore::new(local, shared, "inc0");
        let cat = Catalog::new();
        for i in 0..5 {
            commit_table(&cat, &store, &format!("t{i}"));
            store
                .write_checkpoint(&Checkpoint {
                    version: cat.version(),
                    state: (*cat.snapshot()).clone(),
                })
                .unwrap();
        }
        let ckpts = local2.list("catalog/ckpt/").unwrap();
        assert_eq!(ckpts.len(), 2, "{ckpts:?}");
        // Logs subsumed by the older retained checkpoint are gone.
        let logs = local2.list("catalog/txn/").unwrap();
        assert!(logs.iter().all(|k| version_of_key(k).unwrap() > TxnVersion(4)));
        // Recovery still lands at the head version.
        let (_, version) = store.recover_local().unwrap();
        assert_eq!(version, TxnVersion(5));
    }

    #[test]
    fn sync_uploads_and_reports_interval() {
        let (local, shared) = fses();
        let store = CatalogStore::new(local, shared.clone(), "inc0");
        let cat = Catalog::new();
        commit_table(&cat, &store, "t1");
        commit_table(&cat, &store, "t2");
        let si = store.sync_to_shared().unwrap();
        assert_eq!(si.hi, TxnVersion(2));
        assert_eq!(shared.list("meta/inc0/txn/").unwrap().len(), 2);
        // Idempotent: second sync uploads nothing new.
        let before = shared.stats().puts;
        store.sync_to_shared().unwrap();
        assert_eq!(shared.stats().puts, before);
    }

    #[test]
    fn shared_recovery_honours_truncation() {
        let (local, shared) = fses();
        let store = CatalogStore::new(local, shared, "inc0");
        let cat = Catalog::new();
        for n in ["t1", "t2", "t3", "t4"] {
            commit_table(&cat, &store, n);
        }
        store.sync_to_shared().unwrap();
        let (state, version) = store.recover_from_shared(TxnVersion(2)).unwrap();
        assert_eq!(version, TxnVersion(2));
        assert_eq!(state.tables.len(), 2);
        assert!(state.table_by_name("t3").is_none());
    }

    #[test]
    fn recovery_stops_at_log_gap() {
        let (local, shared) = fses();
        let local2 = local.clone();
        let store = CatalogStore::new(local, shared, "inc0");
        let cat = Catalog::new();
        for n in ["t1", "t2", "t3"] {
            commit_table(&cat, &store, n);
        }
        // Simulate losing the middle log file.
        local2.delete(&txn_key("catalog/", TxnVersion(2))).unwrap();
        let (state, version) = store.recover_local().unwrap();
        assert_eq!(version, TxnVersion(1));
        assert_eq!(state.tables.len(), 1);
    }

    #[test]
    fn batch_append_recovers_like_serial() {
        let (local, shared) = fses();
        let local2 = local.clone();
        let store = CatalogStore::new(local, shared, "inc0");
        let cat = Catalog::new();
        commit_table(&cat, &store, "t1");
        commit_batch(&cat, &store, &["t2", "t3", "t4"]);
        commit_table(&cat, &store, "t5");
        // Three log files cover five versions.
        assert_eq!(local2.list("catalog/txn/").unwrap().len(), 3);
        let (state, version) = store.recover_local().unwrap();
        assert_eq!(version, TxnVersion(5));
        assert_eq!(state.tables.len(), 5);
        // Catch-up streaming crosses the batch boundary mid-file.
        let recs = store.read_records_after(TxnVersion(2)).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.version.0).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn batches_sync_to_shared_and_raise_interval() {
        let (local, shared) = fses();
        let store = CatalogStore::new(local, shared.clone(), "inc0");
        let cat = Catalog::new();
        commit_batch(&cat, &store, &["t1", "t2", "t3"]);
        let si = store.sync_to_shared().unwrap();
        assert_eq!(si.hi, TxnVersion(3));
        let (state, version) = store.recover_from_shared(TxnVersion(3)).unwrap();
        assert_eq!(version, TxnVersion(3));
        assert_eq!(state.tables.len(), 3);
        // Truncating into the middle of the batch replays its prefix.
        let (state, version) = store.recover_from_shared(TxnVersion(2)).unwrap();
        assert_eq!(version, TxnVersion(2));
        assert!(state.table_by_name("t3").is_none());
    }

    #[test]
    fn planted_junk_key_is_ignored_by_recover() {
        let (local, shared) = fses();
        let local2 = local.clone();
        let store = CatalogStore::new(local, shared, "inc0");
        let cat = Catalog::new();
        commit_table(&cat, &store, "t1");
        // A stray numeric-suffixed object under the catalog prefix must
        // not be ingested by list-based replay as a txn record.
        local2
            .write("catalog/junk/00000000000000000007", bytes::Bytes::from("x"))
            .unwrap();
        local2
            .write("catalog/txn/junk/00000000000000000002", bytes::Bytes::from("x"))
            .unwrap();
        let (state, version) = store.recover_local().unwrap();
        assert_eq!(version, TxnVersion(1));
        assert_eq!(state.tables.len(), 1);
    }

    #[test]
    fn truncate_rewrites_straddling_batch() {
        let (local, shared) = fses();
        let local2 = local.clone();
        let store = CatalogStore::new(local, shared, "inc0");
        let cat = Catalog::new();
        commit_table(&cat, &store, "t1");
        commit_batch(&cat, &store, &["t2", "t3", "t4"]);
        // Truncate to version 2 — inside the batch file covering 2..=4.
        let (state, v) = CatalogStore::recover_from(
            local2.as_ref(),
            "catalog/",
            Some(TxnVersion(2)),
        )
        .unwrap();
        assert_eq!(v, TxnVersion(2));
        store.truncate_local(TxnVersion(2), &state).unwrap();
        // No surviving file may reach past the truncation point.
        for k in local2.list("catalog/txn/").unwrap() {
            let (_, hi) = version_range_of_key(&k).unwrap();
            assert!(hi <= TxnVersion(2), "{k} survived truncation");
        }
        let (rec_state, rec_v) = store.recover_local().unwrap();
        assert_eq!(rec_v, TxnVersion(2));
        assert_eq!(rec_state.tables.len(), 2);
        assert!(rec_state.table_by_name("t3").is_none());
    }

    #[test]
    fn truncate_local_rewinds() {
        let (local, shared) = fses();
        let store = CatalogStore::new(local, shared, "inc0");
        let cat = Catalog::new();
        for n in ["t1", "t2", "t3"] {
            commit_table(&cat, &store, n);
        }
        let (state, v) = store.recover_from_shared(TxnVersion(0)).unwrap_or_else(|_| {
            (CatalogState::default(), TxnVersion::ZERO)
        });
        assert_eq!(v, TxnVersion::ZERO);
        // Rewind to version 1 using local recovery at truncation point.
        let (s1, v1) = {
            let (full_state, _) = store.recover_local().unwrap();
            let _ = full_state;
            // recompute state at v1 by replay with truncation via shared
            // path is tested above; here just exercise truncate_local.
            (state, v)
        };
        store.truncate_local(v1, &s1).unwrap();
        let (rec_state, rec_v) = store.recover_local().unwrap();
        assert_eq!(rec_v, v1);
        assert_eq!(rec_state.tables.len(), s1.tables.len());
    }
}
