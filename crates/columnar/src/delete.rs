//! Delete vectors (paper §2.3): tombstones recording the positions of
//! deleted tuples within one ROS container. They are storage objects in
//! their own right — written once, never modified — and an UPDATE is a
//! delete-vector write plus an insert. Deleted rows are physically
//! purged later by mergeout.

use bytes::Bytes;
use eon_types::{EonError, Result};

use crate::format::{Reader, Writer};

const MAGIC: u32 = 0x4456_3031; // "DV01"

/// Positions of deleted rows in one container, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeleteVector {
    positions: Vec<u64>,
}

impl DeleteVector {
    /// Build from positions (deduplicated and sorted here, so callers
    /// can hand in match positions in scan order).
    pub fn new(mut positions: Vec<u64>) -> Self {
        positions.sort_unstable();
        positions.dedup();
        DeleteVector { positions }
    }

    pub fn len(&self) -> usize {
        self.positions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    pub fn positions(&self) -> &[u64] {
        &self.positions
    }

    /// Is row `pos` deleted?
    pub fn contains(&self, pos: u64) -> bool {
        self.positions.binary_search(&pos).is_ok()
    }

    /// Union of two delete vectors (a container can accumulate several
    /// delete vectors before mergeout compacts it).
    pub fn merge(&self, other: &DeleteVector) -> DeleteVector {
        let mut merged = Vec::with_capacity(self.positions.len() + other.positions.len());
        let (mut i, mut j) = (0, 0);
        while i < self.positions.len() && j < other.positions.len() {
            match self.positions[i].cmp(&other.positions[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.positions[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.positions[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.positions[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.positions[i..]);
        merged.extend_from_slice(&other.positions[j..]);
        DeleteVector { positions: merged }
    }

    /// A keep-mask over `total_rows`: `mask[i] == true` means row `i`
    /// survives. Scans apply this after reading blocks.
    pub fn keep_mask(&self, total_rows: u64) -> Vec<bool> {
        let mut mask = vec![true; total_rows as usize];
        for &p in &self.positions {
            if let Some(slot) = mask.get_mut(p as usize) {
                *slot = false;
            }
        }
        mask
    }

    /// Serialize in the same column format as regular data (the paper
    /// notes delete vectors are "stored using the same format as regular
    /// columns") — here: delta-varint positions behind a magic header.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(8 + self.positions.len());
        w.put_u32(MAGIC);
        w.put_varint(self.positions.len() as u64);
        let mut prev = 0u64;
        for &p in &self.positions {
            w.put_varint(p - prev);
            prev = p;
        }
        w.into_bytes()
    }

    pub fn decode(data: &[u8]) -> Result<DeleteVector> {
        let mut r = Reader::new(data);
        if r.get_u32()? != MAGIC {
            return Err(EonError::Corrupt("bad delete vector magic".into()));
        }
        let n = r.get_varint()? as usize;
        let mut positions = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            prev += r.get_varint()?;
            positions.push(prev);
        }
        Ok(DeleteVector { positions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dedup_and_sort_on_construction() {
        let dv = DeleteVector::new(vec![5, 1, 5, 3]);
        assert_eq!(dv.positions(), &[1, 3, 5]);
        assert!(dv.contains(3));
        assert!(!dv.contains(2));
    }

    #[test]
    fn merge_unions() {
        let a = DeleteVector::new(vec![1, 3, 5]);
        let b = DeleteVector::new(vec![2, 3, 9]);
        assert_eq!(a.merge(&b).positions(), &[1, 2, 3, 5, 9]);
        // merge with empty is identity
        assert_eq!(a.merge(&DeleteVector::default()), a);
    }

    #[test]
    fn keep_mask_marks_survivors() {
        let dv = DeleteVector::new(vec![0, 2]);
        assert_eq!(dv.keep_mask(4), vec![false, true, false, true]);
        // positions beyond range are ignored, not a panic
        let dv2 = DeleteVector::new(vec![10]);
        assert_eq!(dv2.keep_mask(2), vec![true, true]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dv = DeleteVector::new((0..1000).filter(|i| i % 7 == 0).collect());
        let enc = dv.encode();
        assert_eq!(DeleteVector::decode(&enc).unwrap(), dv);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(DeleteVector::decode(b"nonsense").is_err());
        assert!(DeleteVector::decode(b"").is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(mut ps in proptest::collection::vec(0u64..1_000_000, 0..500)) {
            let dv = DeleteVector::new(ps.clone());
            let back = DeleteVector::decode(&dv.encode()).unwrap();
            prop_assert_eq!(&back, &dv);
            ps.sort_unstable();
            ps.dedup();
            prop_assert_eq!(back.positions(), &ps[..]);
        }

        #[test]
        fn prop_merge_is_union(
            a in proptest::collection::vec(0u64..200, 0..100),
            b in proptest::collection::vec(0u64..200, 0..100),
        ) {
            let m = DeleteVector::new(a.clone()).merge(&DeleteVector::new(b.clone()));
            let mut expect: Vec<u64> = a.into_iter().chain(b).collect();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(m.positions(), &expect[..]);
        }
    }
}
