//! The columnar storage substrate (paper §2.1–§2.3): sorted projections
//! stored as immutable ROS containers with per-column block encodings,
//! min/max block metadata for pruning, delete vectors, and the
//! segmentation split used at load time.
//!
//! A ROS container here is one shared-storage object laid out as
//! `[column 0 blocks][column 1 blocks]…[footer][footer_len][magic]`,
//! which matches the paper's "column data, followed by a footer with a
//! position index" and its note that small column files are concatenated
//! to reduce file count. Column data is independently retrievable via
//! ranged reads, so the engine stays a true column store.

pub mod container;
pub mod delete;
pub mod encoding;
pub mod format;
pub mod projection;
pub mod pruning;
pub mod segment;

pub use container::{BlockMeta, ColumnMeta, ReadStats, RosFooter, RosReader, RosWriter};
pub use delete::DeleteVector;
pub use encoding::{
    decode_column, decode_column_view, encode_column, encode_with, encoding_fits, EncodedBlock,
    Encoding,
};
pub use projection::{LapFunc, LiveAggregate, Projection, SortOrder};
pub use pruning::{BlockCol, ColumnStats, Predicate};
pub use segment::split_rows_by_shard;
