//! Segmentation split at load time (paper §3.1, §4.5): "Data load
//! splits the data according to the segments and writes the component
//! pieces to a shared storage" — every storage container holds rows for
//! exactly one shard.

use eon_types::{hash_row_32, HashRange, Value};

/// Shard index for a single row given the segmentation columns and the
/// (even) shard count fixed at database creation.
pub fn shard_of_row(row: &[Value], seg_cols: &[usize], num_shards: usize) -> usize {
    let h = hash_row_32(row, seg_cols);
    HashRange::even_index(h, num_shards)
}

/// Split `rows` into `num_shards` buckets by segmentation hash. Order
/// within a bucket preserves input order (the projection sort happens
/// afterwards, per shard).
pub fn split_rows_by_shard(
    rows: Vec<Vec<Value>>,
    seg_cols: &[usize],
    num_shards: usize,
) -> Vec<Vec<Vec<Value>>> {
    let mut buckets: Vec<Vec<Vec<Value>>> = (0..num_shards).map(|_| Vec::new()).collect();
    for row in rows {
        let s = shard_of_row(&row, seg_cols, num_shards);
        buckets[s].push(row);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_types::HashRange;

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n).map(|i| vec![Value::Int(i), Value::Int(i * 10)]).collect()
    }

    #[test]
    fn split_partitions_all_rows() {
        let input = rows(1000);
        let buckets = split_rows_by_shard(input.clone(), &[0], 4);
        assert_eq!(buckets.len(), 4);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 1000);
        // every bucket non-trivially populated for sequential keys
        for b in &buckets {
            assert!(b.len() > 100, "bucket of {}", b.len());
        }
    }

    #[test]
    fn split_is_consistent_with_shard_of_row() {
        let input = rows(200);
        let buckets = split_rows_by_shard(input, &[0], 3);
        for (i, bucket) in buckets.iter().enumerate() {
            for row in bucket {
                assert_eq!(shard_of_row(row, &[0], 3), i);
            }
        }
    }

    #[test]
    fn same_key_same_shard_across_tables() {
        // The co-segmentation property behind local joins (§4): hashing
        // column "a" of T1 and column "b" of T2 puts equal values in the
        // same shard even though the column positions differ.
        for v in 0..50i64 {
            let t1_row = vec![Value::Int(999), Value::Int(v)];
            let t2_row = vec![Value::Int(v), Value::Str("x".into())];
            assert_eq!(
                shard_of_row(&t1_row, &[1], 4),
                shard_of_row(&t2_row, &[0], 4)
            );
        }
    }

    #[test]
    fn shard_matches_hash_range() {
        let ranges = HashRange::split_even(5);
        for i in 0..100i64 {
            let row = vec![Value::Int(i)];
            let s = shard_of_row(&row, &[0], 5);
            let h = eon_types::hash_row_32(&row, &[0]);
            assert!(ranges[s].contains(h));
        }
    }
}
