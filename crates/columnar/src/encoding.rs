//! Column block encodings.
//!
//! Vertica's execution engine "can operate directly on encoded data,
//! effectively compressing CPU cycles as well" (§2.1); sorted data
//! compresses well, which is the point of projection sort orders. We
//! implement the classic column-store family:
//!
//! * **Plain** — tagged values, the fallback.
//! * **RLE** — run-length encoding; ideal for leading sort columns.
//! * **Dict** — dictionary + codes for low-cardinality columns.
//! * **Delta** — zigzag-varint deltas for integer/date columns, tiny
//!   when the column is sorted or clustered.
//!
//! [`encode_column`] picks an encoding by inspecting the block and
//! writes a self-describing payload, so readers never guess.

use eon_types::{Result, Value};

use crate::format::{Reader, Writer};

/// Available block encodings. The numeric discriminants are the on-disk
/// tags — do not reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    Plain = 0,
    Rle = 1,
    Dict = 2,
    Delta = 3,
}

impl Encoding {
    fn from_tag(t: u8) -> Option<Encoding> {
        match t {
            0 => Some(Encoding::Plain),
            1 => Some(Encoding::Rle),
            2 => Some(Encoding::Dict),
            3 => Some(Encoding::Delta),
            _ => None,
        }
    }
}

/// Count the number of RLE runs in `values`.
fn run_count(values: &[Value]) -> usize {
    let mut runs = 0;
    let mut prev: Option<&Value> = None;
    for v in values {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    runs
}

/// Distinct-value count, capped at `cap` (early exit keeps the
/// inspection cheap on high-cardinality blocks).
fn distinct_capped(values: &[Value], cap: usize) -> usize {
    let mut set: std::collections::HashSet<&Value> = std::collections::HashSet::new();
    for v in values {
        set.insert(v);
        if set.len() > cap {
            return set.len();
        }
    }
    set.len()
}

/// Delta encoding stores one type tag for the whole block, so the
/// block must be uniformly Int or uniformly Date (mixed blocks would
/// decode to the wrong type — caught by `prop_any_block_roundtrips`).
fn all_intlike(values: &[Value]) -> bool {
    values.iter().all(|v| matches!(v, Value::Int(_)))
        || values.iter().all(|v| matches!(v, Value::Date(_)))
}

/// Structural identity for encoder run/dictionary detection. `Value`'s
/// cmp-based `==` aliases `Int(1)`/`Float(1.0)` and `0.0`/`-0.0`, so
/// using it would let RLE/Dict rewrite a stored variant into whichever
/// alias appeared first in the block. Encoders must reproduce the exact
/// representation, so floats compare by bits and variants must match.
fn same_repr(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Date(x), Value::Date(y)) => x == y,
        _ => false,
    }
}

/// Hash-map key wrapper agreeing with [`same_repr`], for the dictionary
/// encoder's first-appearance index.
struct ReprKey<'a>(&'a Value);

impl PartialEq for ReprKey<'_> {
    fn eq(&self, other: &Self) -> bool {
        same_repr(self.0, other.0)
    }
}

impl Eq for ReprKey<'_> {}

impl std::hash::Hash for ReprKey<'_> {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        std::mem::discriminant(self.0).hash(h);
        match self.0 {
            Value::Null => {}
            Value::Int(x) => x.hash(h),
            Value::Float(x) => x.to_bits().hash(h),
            Value::Str(s) => s.hash(h),
            Value::Bool(b) => b.hash(h),
            Value::Date(d) => d.hash(h),
        }
    }
}

/// Pick an encoding for a block by inspecting it. Pure heuristic — every
/// encoding round-trips every block it is chosen for.
pub fn choose_encoding(values: &[Value]) -> Encoding {
    if values.is_empty() {
        return Encoding::Plain;
    }
    let n = values.len();
    let runs = run_count(values);
    if runs * 4 <= n {
        return Encoding::Rle;
    }
    if all_intlike(values) {
        return Encoding::Delta;
    }
    let cap = (n / 4).clamp(1, 4096);
    if distinct_capped(values, cap) <= cap && n >= 8 {
        return Encoding::Dict;
    }
    Encoding::Plain
}

/// Encode a block with the given encoding. Returns an error only for
/// encoding/block mismatches that `choose_encoding` never produces.
pub fn encode_with(values: &[Value], enc: Encoding, w: &mut Writer) {
    w.put_u8(enc as u8);
    w.put_varint(values.len() as u64);
    match enc {
        Encoding::Plain => {
            for v in values {
                w.put_value(v);
            }
        }
        Encoding::Rle => {
            let mut i = 0;
            while i < values.len() {
                let mut j = i + 1;
                while j < values.len() && same_repr(&values[j], &values[i]) {
                    j += 1;
                }
                w.put_varint((j - i) as u64);
                w.put_value(&values[i]);
                i = j;
            }
        }
        Encoding::Dict => {
            // Dictionary in first-appearance order; codes are varints.
            let mut dict: Vec<&Value> = Vec::new();
            let mut codes: Vec<u64> = Vec::with_capacity(values.len());
            let mut index: std::collections::HashMap<ReprKey, u64> =
                std::collections::HashMap::new();
            for v in values {
                let code = *index.entry(ReprKey(v)).or_insert_with(|| {
                    dict.push(v);
                    (dict.len() - 1) as u64
                });
                codes.push(code);
            }
            w.put_varint(dict.len() as u64);
            for v in dict {
                w.put_value(v);
            }
            for c in codes {
                w.put_varint(c);
            }
        }
        Encoding::Delta => {
            // Tag byte distinguishes Int from Date blocks; nulls and
            // mixed blocks must use another encoding.
            let is_date = matches!(values.first(), Some(Value::Date(_)));
            w.put_u8(is_date as u8);
            let mut prev: i64 = 0;
            for v in values {
                let cur = v.as_int().expect("delta encoding requires int-like block");
                w.put_signed_varint(cur.wrapping_sub(prev));
                prev = cur;
            }
        }
    }
}

/// Can `values` be written with `enc` and decode back exactly? Only
/// Delta has a real restriction (one type tag for the whole block);
/// the other encodings round-trip any block.
pub fn encoding_fits(values: &[Value], enc: Encoding) -> bool {
    match enc {
        Encoding::Plain | Encoding::Rle | Encoding::Dict => true,
        Encoding::Delta => all_intlike(values),
    }
}

/// Encode a block, choosing the encoding automatically.
pub fn encode_column(values: &[Value], w: &mut Writer) -> Encoding {
    let enc = choose_encoding(values);
    encode_with(values, enc, w);
    enc
}

/// One decoded-or-not column block: the scan path's view of a block.
///
/// `Plain` carries fully decoded values (the Delta decoder also lands
/// here — deltas must be cumulated anyway, so there is nothing to
/// operate on "encoded"). `Rle` and `Dict` keep the compressed shape so
/// predicates and aggregates can work per-run / per-dictionary-entry
/// instead of per-row, and so late materialization can gather only
/// surviving rows without ever building the full `Vec<Value>`.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedBlock {
    Plain(Vec<Value>),
    Rle {
        rows: usize,
        /// (run length, value); run lengths are ≥ 1 and sum to `rows`.
        runs: Vec<(u64, Value)>,
    },
    Dict {
        /// Distinct values in first-appearance order.
        dict: Vec<Value>,
        /// One in-range dictionary code per row.
        codes: Vec<u32>,
    },
}

impl EncodedBlock {
    pub fn rows(&self) -> usize {
        match self {
            EncodedBlock::Plain(vs) => vs.len(),
            EncodedBlock::Rle { rows, .. } => *rows,
            EncodedBlock::Dict { codes, .. } => codes.len(),
        }
    }

    /// Whether this block is served in compressed form (the
    /// `scan_encoded_blocks_total` metric counts these).
    pub fn is_encoded(&self) -> bool {
        !matches!(self, EncodedBlock::Plain(_))
    }

    /// Predicate comparisons avoided versus row-at-a-time evaluation:
    /// an RLE block needs one test per run, a dictionary block one per
    /// distinct value.
    pub fn short_circuit_rows(&self) -> u64 {
        match self {
            EncodedBlock::Plain(_) => 0,
            EncodedBlock::Rle { rows, runs } => (rows - runs.len()) as u64,
            EncodedBlock::Dict { dict, codes } => codes.len().saturating_sub(dict.len()) as u64,
        }
    }

    /// The [`BlockCol`](crate::pruning::BlockCol) view
    /// [`Predicate::eval_block`](crate::pruning::Predicate::eval_block)
    /// consumes.
    pub fn as_block_col(&self) -> crate::pruning::BlockCol<'_> {
        match self {
            EncodedBlock::Plain(vs) => crate::pruning::BlockCol::Values(vs),
            EncodedBlock::Rle { runs, .. } => crate::pruning::BlockCol::Rle(runs),
            EncodedBlock::Dict { dict, codes } => crate::pruning::BlockCol::Dict { dict, codes },
        }
    }

    /// Materialize every row.
    pub fn decode(&self) -> Vec<Value> {
        match self {
            EncodedBlock::Plain(vs) => vs.clone(),
            EncodedBlock::Rle { rows, runs } => {
                let mut out = Vec::with_capacity(*rows);
                for (run, v) in runs {
                    out.resize(out.len() + *run as usize, v.clone());
                }
                out
            }
            EncodedBlock::Dict { dict, codes } => {
                codes.iter().map(|&c| dict[c as usize].clone()).collect()
            }
        }
    }

    /// Materialize only the rows at `idx` (sorted ascending, in range):
    /// late materialization below the decode boundary. One pass over
    /// the runs/codes regardless of how many survivors there are.
    pub fn gather(&self, idx: &[usize]) -> Vec<Value> {
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        match self {
            EncodedBlock::Plain(vs) => idx.iter().map(|&i| vs[i].clone()).collect(),
            EncodedBlock::Rle { runs, .. } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut it = idx.iter().peekable();
                let mut end = 0u64;
                for (run, v) in runs {
                    end += run;
                    while it.peek().map(|&&i| (i as u64) < end).unwrap_or(false) {
                        it.next();
                        out.push(v.clone());
                    }
                    if it.peek().is_none() {
                        break;
                    }
                }
                debug_assert_eq!(out.len(), idx.len(), "gather index out of range");
                out
            }
            EncodedBlock::Dict { dict, codes } => idx
                .iter()
                .map(|&i| dict[codes[i] as usize].clone())
                .collect(),
        }
    }
}

fn corrupt(msg: &str) -> eon_types::EonError {
    eon_types::EonError::Corrupt(msg.into())
}

/// Decode one block written by [`encode_column`]/[`encode_with`] into
/// its [`EncodedBlock`] view, without materializing RLE runs or
/// dictionary codes into rows.
///
/// Hardened against corrupt input: counts from the wire are bounded by
/// the bytes actually present before any allocation (each value, code,
/// or delta costs at least one byte), so a bit-flipped length yields a
/// typed [`Corrupt`](eon_types::EonError::Corrupt) error — never a
/// capacity-overflow abort, never silently short rows.
pub fn decode_column_view(r: &mut Reader<'_>) -> Result<EncodedBlock> {
    let tag = r.get_u8()?;
    let enc = Encoding::from_tag(tag)
        .ok_or_else(|| eon_types::EonError::Corrupt(format!("bad encoding tag {tag}")))?;
    let n = r.get_varint()? as usize;
    match enc {
        Encoding::Plain => {
            if n > r.remaining() {
                return Err(corrupt("plain count exceeds payload"));
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(r.get_value()?);
            }
            Ok(EncodedBlock::Plain(out))
        }
        Encoding::Rle => {
            // Each run costs ≥ 2 bytes (length varint + value tag).
            let mut runs = Vec::with_capacity((n.min(r.remaining()) / 2).min(n));
            let mut total = 0usize;
            while total < n {
                let run = r.get_varint()?;
                let v = r.get_value()?;
                if run == 0 || total as u64 + run > n as u64 {
                    return Err(corrupt("bad RLE run"));
                }
                total += run as usize;
                runs.push((run, v));
            }
            Ok(EncodedBlock::Rle { rows: n, runs })
        }
        Encoding::Dict => {
            let dsize = r.get_varint()? as usize;
            if dsize > r.remaining() {
                return Err(corrupt("dict size exceeds payload"));
            }
            let mut dict = Vec::with_capacity(dsize);
            for _ in 0..dsize {
                dict.push(r.get_value()?);
            }
            if n > r.remaining() {
                return Err(corrupt("dict code count exceeds payload"));
            }
            let mut codes = Vec::with_capacity(n);
            for _ in 0..n {
                let code = r.get_varint()?;
                if code >= dsize as u64 {
                    return Err(corrupt("dict code out of range"));
                }
                codes.push(code as u32);
            }
            Ok(EncodedBlock::Dict { dict, codes })
        }
        Encoding::Delta => {
            let is_date = r.get_u8()? != 0;
            if n > r.remaining() {
                return Err(corrupt("delta count exceeds payload"));
            }
            let mut out = Vec::with_capacity(n);
            let mut prev: i64 = 0;
            for _ in 0..n {
                prev = prev.wrapping_add(r.get_signed_varint()?);
                out.push(if is_date {
                    Value::Date(prev as i32)
                } else {
                    Value::Int(prev)
                });
            }
            Ok(EncodedBlock::Plain(out))
        }
    }
}

/// Decode one block written by [`encode_column`]/[`encode_with`].
pub fn decode_column(r: &mut Reader<'_>) -> Result<Vec<Value>> {
    Ok(decode_column_view(r)?.decode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(values: &[Value]) -> Vec<Value> {
        let mut w = Writer::new();
        encode_column(values, &mut w);
        let b = w.into_bytes();
        decode_column(&mut Reader::new(&b)).unwrap()
    }

    fn roundtrip_with(values: &[Value], enc: Encoding) -> Vec<Value> {
        let mut w = Writer::new();
        encode_with(values, enc, &mut w);
        let b = w.into_bytes();
        decode_column(&mut Reader::new(&b)).unwrap()
    }

    #[test]
    fn empty_block() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn rle_chosen_for_runs() {
        let vals: Vec<Value> = (0..100)
            .map(|i| Value::Str(if i < 60 { "a" } else { "b" }.into()))
            .collect();
        assert_eq!(choose_encoding(&vals), Encoding::Rle);
        assert_eq!(roundtrip(&vals), vals);
    }

    /// `Value`'s cmp-based `==` says `Int(1) == Float(1.0)` and
    /// `0.0 == -0.0`; the RLE/Dict encoders must not collapse those
    /// aliases into one stored representation.
    #[test]
    fn rle_and_dict_preserve_value_representation() {
        let vals = vec![
            Value::Int(1),
            Value::Float(1.0),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Int(1),
        ];
        for enc in [Encoding::Rle, Encoding::Dict] {
            let mut w = Writer::new();
            encode_with(&vals, enc, &mut w);
            let got = decode_column(&mut Reader::new(w.as_slice())).unwrap();
            assert_eq!(
                format!("{got:?}"),
                format!("{vals:?}"),
                "{enc:?} rewrote a value representation"
            );
        }
    }

    #[test]
    fn delta_chosen_for_sorted_ints() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        assert_eq!(choose_encoding(&vals), Encoding::Delta);
        assert_eq!(roundtrip(&vals), vals);
    }

    #[test]
    fn delta_compresses_sorted_ints() {
        let vals: Vec<Value> = (1_000_000..1_004_096).map(Value::Int).collect();
        let mut wd = Writer::new();
        encode_with(&vals, Encoding::Delta, &mut wd);
        let mut wp = Writer::new();
        encode_with(&vals, Encoding::Plain, &mut wp);
        assert!(
            wd.len() * 2 < wp.len(),
            "delta {} vs plain {}",
            wd.len(),
            wp.len()
        );
    }

    #[test]
    fn dict_chosen_for_low_cardinality() {
        // Interleaved so RLE is a poor fit, but few distinct values.
        let vals: Vec<Value> = (0..128)
            .map(|i| Value::Str(format!("cat{}", i % 7)))
            .collect();
        assert_eq!(choose_encoding(&vals), Encoding::Dict);
        assert_eq!(roundtrip(&vals), vals);
    }

    #[test]
    fn dates_delta_roundtrip() {
        let vals: Vec<Value> = (0..50).map(|i| Value::Date(9000 + i * 3)).collect();
        assert_eq!(roundtrip_with(&vals, Encoding::Delta), vals);
    }

    #[test]
    fn nulls_roundtrip_in_all_null_capable_encodings() {
        let vals = vec![Value::Null, Value::Int(1), Value::Null, Value::Int(1)];
        for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict] {
            assert_eq!(roundtrip_with(&vals, enc), vals, "{enc:?}");
        }
    }

    #[test]
    fn negative_deltas() {
        let vals: Vec<Value> = [5i64, 3, -10, 100, 0].map(Value::Int).to_vec();
        assert_eq!(roundtrip_with(&vals, Encoding::Delta), vals);
    }

    #[test]
    fn corrupt_tag_is_error() {
        let buf = [9u8, 0u8];
        assert!(decode_column(&mut Reader::new(&buf)).is_err());
    }

    /// A corrupt row/dict/delta count larger than the payload must be a
    /// typed error before any allocation, not a capacity-overflow abort.
    #[test]
    fn absurd_counts_are_typed_errors() {
        for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict, Encoding::Delta] {
            let mut w = Writer::new();
            w.put_u8(enc as u8);
            w.put_varint(u64::MAX); // claimed count
            w.put_u8(0); // one byte of "payload"
            let b = w.into_bytes();
            let got = decode_column(&mut Reader::new(&b));
            assert!(
                matches!(got, Err(eon_types::EonError::Corrupt(_))),
                "{enc:?}: {got:?}"
            );
        }
    }

    /// Encoded views keep the compressed shape and gather survivors
    /// without materializing the block.
    #[test]
    fn views_keep_shape_and_gather() {
        let rle: Vec<Value> = (0..100)
            .map(|i| Value::Str(if i < 60 { "a" } else { "b" }.into()))
            .collect();
        let mut w = Writer::new();
        encode_with(&rle, Encoding::Rle, &mut w);
        let b = w.into_bytes();
        let view = decode_column_view(&mut Reader::new(&b)).unwrap();
        assert!(matches!(&view, EncodedBlock::Rle { rows: 100, runs } if runs.len() == 2));
        assert!(view.is_encoded());
        assert_eq!(view.short_circuit_rows(), 98);
        assert_eq!(view.decode(), rle);
        assert_eq!(
            view.gather(&[0, 59, 60, 99]),
            vec![rle[0].clone(), rle[59].clone(), rle[60].clone(), rle[99].clone()]
        );

        let dict: Vec<Value> = (0..40).map(|i| Value::Int(i % 3)).collect();
        let mut w = Writer::new();
        encode_with(&dict, Encoding::Dict, &mut w);
        let b = w.into_bytes();
        let view = decode_column_view(&mut Reader::new(&b)).unwrap();
        assert!(matches!(&view, EncodedBlock::Dict { dict, codes } if dict.len() == 3 && codes.len() == 40));
        assert_eq!(view.short_circuit_rows(), 37);
        assert_eq!(view.decode(), dict);
        assert_eq!(view.gather(&[1, 38]), vec![dict[1].clone(), dict[38].clone()]);

        // Delta falls back to a decoded Plain view.
        let ints: Vec<Value> = (0..50).map(Value::Int).collect();
        let mut w = Writer::new();
        encode_with(&ints, Encoding::Delta, &mut w);
        let b = w.into_bytes();
        let view = decode_column_view(&mut Reader::new(&b)).unwrap();
        assert!(matches!(&view, EncodedBlock::Plain(_)));
        assert!(!view.is_encoded());
        assert_eq!(view.decode(), ints);
    }

    proptest! {
        /// `gather` over any encoding equals indexing the decoded rows.
        #[test]
        fn prop_gather_matches_decode_index(
            vals in proptest::collection::vec(
                prop_oneof![
                    Just(Value::Null),
                    (-3i64..3).prop_map(Value::Int),
                    "[ab]{0,2}".prop_map(Value::Str),
                ],
                1..120,
            ),
            mask in proptest::collection::vec(any::<bool>(), 1..120),
        ) {
            let idx: Vec<usize> = (0..vals.len()).filter(|&i| *mask.get(i).unwrap_or(&false)).collect();
            for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict] {
                let mut w = Writer::new();
                encode_with(&vals, enc, &mut w);
                let b = w.into_bytes();
                let view = decode_column_view(&mut Reader::new(&b)).unwrap();
                let expect: Vec<Value> = idx.iter().map(|&i| vals[i].clone()).collect();
                prop_assert_eq!(view.gather(&idx), expect, "{:?}", enc);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_any_block_roundtrips(vals in proptest::collection::vec(
            prop_oneof![
                Just(Value::Null),
                any::<i64>().prop_map(Value::Int),
                any::<f64>().prop_map(Value::Float),
                "[a-z]{0,8}".prop_map(Value::Str),
                any::<bool>().prop_map(Value::Bool),
                any::<i32>().prop_map(Value::Date),
            ],
            0..300,
        )) {
            prop_assert_eq!(roundtrip(&vals), vals);
        }

        #[test]
        fn prop_int_blocks_roundtrip_under_every_fit_encoding(
            ints in proptest::collection::vec(any::<i64>(), 1..200)
        ) {
            let vals: Vec<Value> = ints.into_iter().map(Value::Int).collect();
            for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict, Encoding::Delta] {
                prop_assert_eq!(roundtrip_with(&vals, enc), vals.clone());
            }
        }
    }
}
