//! Column block encodings.
//!
//! Vertica's execution engine "can operate directly on encoded data,
//! effectively compressing CPU cycles as well" (§2.1); sorted data
//! compresses well, which is the point of projection sort orders. We
//! implement the classic column-store family:
//!
//! * **Plain** — tagged values, the fallback.
//! * **RLE** — run-length encoding; ideal for leading sort columns.
//! * **Dict** — dictionary + codes for low-cardinality columns.
//! * **Delta** — zigzag-varint deltas for integer/date columns, tiny
//!   when the column is sorted or clustered.
//!
//! [`encode_column`] picks an encoding by inspecting the block and
//! writes a self-describing payload, so readers never guess.

use eon_types::{Result, Value};

use crate::format::{Reader, Writer};

/// Available block encodings. The numeric discriminants are the on-disk
/// tags — do not reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    Plain = 0,
    Rle = 1,
    Dict = 2,
    Delta = 3,
}

impl Encoding {
    fn from_tag(t: u8) -> Option<Encoding> {
        match t {
            0 => Some(Encoding::Plain),
            1 => Some(Encoding::Rle),
            2 => Some(Encoding::Dict),
            3 => Some(Encoding::Delta),
            _ => None,
        }
    }
}

/// Count the number of RLE runs in `values`.
fn run_count(values: &[Value]) -> usize {
    let mut runs = 0;
    let mut prev: Option<&Value> = None;
    for v in values {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    runs
}

/// Distinct-value count, capped at `cap` (early exit keeps the
/// inspection cheap on high-cardinality blocks).
fn distinct_capped(values: &[Value], cap: usize) -> usize {
    let mut set: std::collections::HashSet<&Value> = std::collections::HashSet::new();
    for v in values {
        set.insert(v);
        if set.len() > cap {
            return set.len();
        }
    }
    set.len()
}

/// Delta encoding stores one type tag for the whole block, so the
/// block must be uniformly Int or uniformly Date (mixed blocks would
/// decode to the wrong type — caught by `prop_any_block_roundtrips`).
fn all_intlike(values: &[Value]) -> bool {
    values.iter().all(|v| matches!(v, Value::Int(_)))
        || values.iter().all(|v| matches!(v, Value::Date(_)))
}

/// Pick an encoding for a block by inspecting it. Pure heuristic — every
/// encoding round-trips every block it is chosen for.
pub fn choose_encoding(values: &[Value]) -> Encoding {
    if values.is_empty() {
        return Encoding::Plain;
    }
    let n = values.len();
    let runs = run_count(values);
    if runs * 4 <= n {
        return Encoding::Rle;
    }
    if all_intlike(values) {
        return Encoding::Delta;
    }
    let cap = (n / 4).clamp(1, 4096);
    if distinct_capped(values, cap) <= cap && n >= 8 {
        return Encoding::Dict;
    }
    Encoding::Plain
}

/// Encode a block with the given encoding. Returns an error only for
/// encoding/block mismatches that `choose_encoding` never produces.
pub fn encode_with(values: &[Value], enc: Encoding, w: &mut Writer) {
    w.put_u8(enc as u8);
    w.put_varint(values.len() as u64);
    match enc {
        Encoding::Plain => {
            for v in values {
                w.put_value(v);
            }
        }
        Encoding::Rle => {
            let mut i = 0;
            while i < values.len() {
                let mut j = i + 1;
                while j < values.len() && values[j] == values[i] {
                    j += 1;
                }
                w.put_varint((j - i) as u64);
                w.put_value(&values[i]);
                i = j;
            }
        }
        Encoding::Dict => {
            // Dictionary in first-appearance order; codes are varints.
            let mut dict: Vec<&Value> = Vec::new();
            let mut codes: Vec<u64> = Vec::with_capacity(values.len());
            let mut index: std::collections::HashMap<&Value, u64> =
                std::collections::HashMap::new();
            for v in values {
                let code = *index.entry(v).or_insert_with(|| {
                    dict.push(v);
                    (dict.len() - 1) as u64
                });
                codes.push(code);
            }
            w.put_varint(dict.len() as u64);
            for v in dict {
                w.put_value(v);
            }
            for c in codes {
                w.put_varint(c);
            }
        }
        Encoding::Delta => {
            // Tag byte distinguishes Int from Date blocks; nulls and
            // mixed blocks must use another encoding.
            let is_date = matches!(values.first(), Some(Value::Date(_)));
            w.put_u8(is_date as u8);
            let mut prev: i64 = 0;
            for v in values {
                let cur = v.as_int().expect("delta encoding requires int-like block");
                w.put_signed_varint(cur.wrapping_sub(prev));
                prev = cur;
            }
        }
    }
}

/// Encode a block, choosing the encoding automatically.
pub fn encode_column(values: &[Value], w: &mut Writer) -> Encoding {
    let enc = choose_encoding(values);
    encode_with(values, enc, w);
    enc
}

/// Decode one block written by [`encode_column`]/[`encode_with`].
pub fn decode_column(r: &mut Reader<'_>) -> Result<Vec<Value>> {
    let tag = r.get_u8()?;
    let enc = Encoding::from_tag(tag)
        .ok_or_else(|| eon_types::EonError::Corrupt(format!("bad encoding tag {tag}")))?;
    let n = r.get_varint()? as usize;
    let mut out = Vec::with_capacity(n);
    match enc {
        Encoding::Plain => {
            for _ in 0..n {
                out.push(r.get_value()?);
            }
        }
        Encoding::Rle => {
            while out.len() < n {
                let run = r.get_varint()? as usize;
                let v = r.get_value()?;
                if run == 0 || out.len() + run > n {
                    return Err(eon_types::EonError::Corrupt("bad RLE run".into()));
                }
                for _ in 0..run {
                    out.push(v.clone());
                }
            }
        }
        Encoding::Dict => {
            let dsize = r.get_varint()? as usize;
            let mut dict = Vec::with_capacity(dsize);
            for _ in 0..dsize {
                dict.push(r.get_value()?);
            }
            for _ in 0..n {
                let code = r.get_varint()? as usize;
                let v = dict
                    .get(code)
                    .ok_or_else(|| eon_types::EonError::Corrupt("dict code out of range".into()))?;
                out.push(v.clone());
            }
        }
        Encoding::Delta => {
            let is_date = r.get_u8()? != 0;
            let mut prev: i64 = 0;
            for _ in 0..n {
                prev = prev.wrapping_add(r.get_signed_varint()?);
                out.push(if is_date {
                    Value::Date(prev as i32)
                } else {
                    Value::Int(prev)
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(values: &[Value]) -> Vec<Value> {
        let mut w = Writer::new();
        encode_column(values, &mut w);
        let b = w.into_bytes();
        decode_column(&mut Reader::new(&b)).unwrap()
    }

    fn roundtrip_with(values: &[Value], enc: Encoding) -> Vec<Value> {
        let mut w = Writer::new();
        encode_with(values, enc, &mut w);
        let b = w.into_bytes();
        decode_column(&mut Reader::new(&b)).unwrap()
    }

    #[test]
    fn empty_block() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn rle_chosen_for_runs() {
        let vals: Vec<Value> = (0..100)
            .map(|i| Value::Str(if i < 60 { "a" } else { "b" }.into()))
            .collect();
        assert_eq!(choose_encoding(&vals), Encoding::Rle);
        assert_eq!(roundtrip(&vals), vals);
    }

    #[test]
    fn delta_chosen_for_sorted_ints() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        assert_eq!(choose_encoding(&vals), Encoding::Delta);
        assert_eq!(roundtrip(&vals), vals);
    }

    #[test]
    fn delta_compresses_sorted_ints() {
        let vals: Vec<Value> = (1_000_000..1_004_096).map(Value::Int).collect();
        let mut wd = Writer::new();
        encode_with(&vals, Encoding::Delta, &mut wd);
        let mut wp = Writer::new();
        encode_with(&vals, Encoding::Plain, &mut wp);
        assert!(
            wd.len() * 2 < wp.len(),
            "delta {} vs plain {}",
            wd.len(),
            wp.len()
        );
    }

    #[test]
    fn dict_chosen_for_low_cardinality() {
        // Interleaved so RLE is a poor fit, but few distinct values.
        let vals: Vec<Value> = (0..128)
            .map(|i| Value::Str(format!("cat{}", i % 7)))
            .collect();
        assert_eq!(choose_encoding(&vals), Encoding::Dict);
        assert_eq!(roundtrip(&vals), vals);
    }

    #[test]
    fn dates_delta_roundtrip() {
        let vals: Vec<Value> = (0..50).map(|i| Value::Date(9000 + i * 3)).collect();
        assert_eq!(roundtrip_with(&vals, Encoding::Delta), vals);
    }

    #[test]
    fn nulls_roundtrip_in_all_null_capable_encodings() {
        let vals = vec![Value::Null, Value::Int(1), Value::Null, Value::Int(1)];
        for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict] {
            assert_eq!(roundtrip_with(&vals, enc), vals, "{enc:?}");
        }
    }

    #[test]
    fn negative_deltas() {
        let vals: Vec<Value> = [5i64, 3, -10, 100, 0].map(Value::Int).to_vec();
        assert_eq!(roundtrip_with(&vals, Encoding::Delta), vals);
    }

    #[test]
    fn corrupt_tag_is_error() {
        let buf = [9u8, 0u8];
        assert!(decode_column(&mut Reader::new(&buf)).is_err());
    }

    proptest! {
        #[test]
        fn prop_any_block_roundtrips(vals in proptest::collection::vec(
            prop_oneof![
                Just(Value::Null),
                any::<i64>().prop_map(Value::Int),
                any::<f64>().prop_map(Value::Float),
                "[a-z]{0,8}".prop_map(Value::Str),
                any::<bool>().prop_map(Value::Bool),
                any::<i32>().prop_map(Value::Date),
            ],
            0..300,
        )) {
            prop_assert_eq!(roundtrip(&vals), vals);
        }

        #[test]
        fn prop_int_blocks_roundtrip_under_every_fit_encoding(
            ints in proptest::collection::vec(any::<i64>(), 1..200)
        ) {
            let vals: Vec<Value> = ints.into_iter().map(Value::Int).collect();
            for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict, Encoding::Delta] {
                prop_assert_eq!(roundtrip_with(&vals, enc), vals.clone());
            }
        }
    }
}
