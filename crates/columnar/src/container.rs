//! ROS container format (paper §2.3).
//!
//! One immutable object per container:
//!
//! ```text
//! [col 0: block, block, …][col 1: …] … [footer][footer_len u32][crc u64][magic u32]
//! ```
//!
//! The footer is the *position index*: per column, per block — byte
//! offset, length, row count, and min/max values used by the engine for
//! block pruning (§2.1's "tracking minimum and maximum values of
//! columns in each storage"). Column data is independently retrievable
//! (true column store) via ranged reads, and trailer-last layout means a
//! reader needs only the object size plus two ranged reads to open a
//! container of any width.

use bytes::Bytes;
use eon_types::{EonError, Result, Value};

use crate::encoding::{
    decode_column_view, encode_column, encode_with, encoding_fits, EncodedBlock, Encoding,
};
use crate::format::{checksum, Reader, Writer};

const MAGIC: u32 = 0x524f_5331; // "ROS1"
const TRAILER_LEN: u64 = 4 + 8 + 4;

/// Rows per encoded block. Small enough that min/max pruning has
/// resolution, large enough to amortize per-block headers.
pub const DEFAULT_BLOCK_ROWS: usize = 4096;

/// Metadata for one encoded block of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    /// Byte offset of the block within the container object.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    /// Number of rows in the block.
    pub rows: u64,
    /// Minimum non-null value (`Null` iff the block is all null).
    pub min: Value,
    /// Maximum non-null value (`Null` iff the block is all null).
    pub max: Value,
    /// Whether the block contains any nulls.
    pub has_null: bool,
}

/// Metadata for one column of a container.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnMeta {
    pub blocks: Vec<BlockMeta>,
}

impl ColumnMeta {
    /// Column-level min over block minimums (None if all-null).
    pub fn min(&self) -> Option<&Value> {
        self.blocks
            .iter()
            .map(|b| &b.min)
            .filter(|v| !v.is_null())
            .min()
    }

    pub fn max(&self) -> Option<&Value> {
        self.blocks
            .iter()
            .map(|b| &b.max)
            .filter(|v| !v.is_null())
            .max()
    }
}

/// The parsed footer of a ROS container.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RosFooter {
    pub total_rows: u64,
    pub columns: Vec<ColumnMeta>,
}

fn minmax(values: &[Value]) -> (Value, Value, bool) {
    let mut min: Option<&Value> = None;
    let mut max: Option<&Value> = None;
    let mut has_null = false;
    for v in values {
        if v.is_null() {
            has_null = true;
            continue;
        }
        if min.map(|m| v < m).unwrap_or(true) {
            min = Some(v);
        }
        if max.map(|m| v > m).unwrap_or(true) {
            max = Some(v);
        }
    }
    (
        min.cloned().unwrap_or(Value::Null),
        max.cloned().unwrap_or(Value::Null),
        has_null,
    )
}

/// Encodes column-major data into the container format.
pub struct RosWriter {
    block_rows: usize,
    force: Option<Encoding>,
}

impl Default for RosWriter {
    fn default() -> Self {
        RosWriter {
            block_rows: DEFAULT_BLOCK_ROWS,
            force: None,
        }
    }
}

impl RosWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_block_rows(block_rows: usize) -> Self {
        assert!(block_rows > 0);
        RosWriter {
            block_rows,
            ..Self::default()
        }
    }

    /// Force every block onto one encoding instead of the per-block
    /// heuristic (A/B testing and encoding-equivalence tests). Blocks
    /// the encoding cannot represent (e.g. Delta over a mixed-type
    /// block) silently fall back to the heuristic choice, so any data
    /// remains writable under any forced encoding.
    pub fn force_encoding(mut self, force: Option<Encoding>) -> Self {
        self.force = force;
        self
    }

    /// Encode `columns` (column-major, equal lengths, already sorted by
    /// the projection sort order) into one container object.
    pub fn encode(&self, columns: &[Vec<Value>]) -> Result<(Bytes, RosFooter)> {
        let total_rows = columns.first().map(|c| c.len()).unwrap_or(0) as u64;
        for (i, c) in columns.iter().enumerate() {
            if c.len() as u64 != total_rows {
                return Err(EonError::Internal(format!(
                    "column {i} has {} rows, expected {total_rows}",
                    c.len()
                )));
            }
        }

        let mut w = Writer::with_capacity(1024);
        let mut footer = RosFooter {
            total_rows,
            columns: Vec::with_capacity(columns.len()),
        };

        for col in columns {
            let mut meta = ColumnMeta::default();
            for chunk in col.chunks(self.block_rows.max(1)) {
                let offset = w.len() as u64;
                match self.force {
                    Some(enc) if encoding_fits(chunk, enc) => encode_with(chunk, enc, &mut w),
                    _ => {
                        encode_column(chunk, &mut w);
                    }
                }
                let (min, max, has_null) = minmax(chunk);
                meta.blocks.push(BlockMeta {
                    offset,
                    len: w.len() as u64 - offset,
                    rows: chunk.len() as u64,
                    min,
                    max,
                    has_null,
                });
            }
            // Zero-row container still records the column.
            footer.columns.push(meta);
        }

        // Footer.
        let footer_start = w.len();
        w.put_varint(footer.total_rows);
        w.put_varint(footer.columns.len() as u64);
        for col in &footer.columns {
            w.put_varint(col.blocks.len() as u64);
            for b in &col.blocks {
                w.put_u64(b.offset);
                w.put_varint(b.len);
                w.put_varint(b.rows);
                w.put_value(&b.min);
                w.put_value(&b.max);
                w.put_u8(b.has_null as u8);
            }
        }
        let footer_len = (w.len() - footer_start) as u32;
        let crc = checksum(&w.as_slice()[footer_start..]);
        w.put_u32(footer_len);
        w.put_u64(crc);
        w.put_u32(MAGIC);
        Ok((w.into_bytes(), footer))
    }
}

fn parse_footer(buf: &[u8]) -> Result<RosFooter> {
    let mut r = Reader::new(buf);
    let total_rows = r.get_varint()?;
    let ncols = r.get_varint()? as usize;
    if ncols > 100_000 {
        return Err(EonError::Corrupt("absurd column count".into()));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let nblocks = r.get_varint()? as usize;
        // Each block entry costs ≥ 13 bytes; a corrupt count past the
        // buffer must not become a huge upfront allocation.
        if nblocks > r.remaining() {
            return Err(EonError::Corrupt("block count exceeds footer".into()));
        }
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            blocks.push(BlockMeta {
                offset: r.get_u64()?,
                len: r.get_varint()?,
                rows: r.get_varint()?,
                min: r.get_value()?,
                max: r.get_value()?,
                has_null: r.get_u8()? != 0,
            });
        }
        columns.push(ColumnMeta { blocks });
    }
    Ok(RosFooter {
        total_rows,
        columns,
    })
}

/// Read access to one container object through any UDFS filesystem.
///
/// The reader keeps no data, only the footer; every `read_*` call goes
/// back to the filesystem, so placing a [`eon_storage::PosixFs`]-backed
/// cache in front is what makes repeated scans fast (§5.2).
pub struct RosReader {
    key: String,
    footer: RosFooter,
}

impl RosReader {
    /// Open by reading the trailer + footer (two ranged reads).
    pub fn open(fs: &dyn eon_storage::FileSystem, key: &str) -> Result<Self> {
        let size = fs.size(key)?;
        if size < TRAILER_LEN {
            return Err(EonError::Corrupt(format!("{key}: too small ({size}B)")));
        }
        let trailer = fs.read_range(key, size - TRAILER_LEN, TRAILER_LEN)?;
        let mut tr = Reader::new(&trailer);
        let footer_len = tr.get_u32()? as u64;
        let crc = tr.get_u64()?;
        let magic = tr.get_u32()?;
        if magic != MAGIC {
            return Err(EonError::Corrupt(format!("{key}: bad magic {magic:#x}")));
        }
        if footer_len + TRAILER_LEN > size {
            return Err(EonError::Corrupt(format!("{key}: bad footer length")));
        }
        let footer_buf = fs.read_range(key, size - TRAILER_LEN - footer_len, footer_len)?;
        if checksum(&footer_buf) != crc {
            return Err(EonError::Corrupt(format!("{key}: footer checksum mismatch")));
        }
        Ok(RosReader {
            key: key.to_owned(),
            footer: parse_footer(&footer_buf)?,
        })
    }

    pub fn key(&self) -> &str {
        &self.key
    }

    pub fn footer(&self) -> &RosFooter {
        &self.footer
    }

    pub fn total_rows(&self) -> u64 {
        self.footer.total_rows
    }

    pub fn column_count(&self) -> usize {
        self.footer.columns.len()
    }

    /// Read one whole column.
    pub fn read_column(&self, fs: &dyn eon_storage::FileSystem, col: usize) -> Result<Vec<Value>> {
        let keep = vec![true; self.footer.columns[col].blocks.len()];
        let blocks = self.read_column_blocks(fs, col, &keep)?;
        Ok(blocks.into_iter().flatten().flatten().collect())
    }

    /// Read a column with block pruning: `keep[i] == false` skips block
    /// `i` (returning `None` in its slot so positions stay alignable).
    /// One ranged read per surviving block.
    pub fn read_column_blocks(
        &self,
        fs: &dyn eon_storage::FileSystem,
        col: usize,
        keep: &[bool],
    ) -> Result<Vec<Option<Vec<Value>>>> {
        let mut stats = ReadStats::default();
        self.read_column_blocks_with(fs, col, keep, None, &mut stats)
    }

    /// Like [`read_column_blocks`](Self::read_column_blocks), but with
    /// request coalescing: surviving blocks whose byte ranges are
    /// adjacent — or separated by a skipped gap of at most
    /// `coalesce_gap` bytes — are fetched with one ranged read and
    /// sliced locally. `None` disables coalescing (one GET per block).
    /// I/O accounting lands in `stats`.
    pub fn read_column_blocks_with(
        &self,
        fs: &dyn eon_storage::FileSystem,
        col: usize,
        keep: &[bool],
        coalesce_gap: Option<u64>,
        stats: &mut ReadStats,
    ) -> Result<Vec<Option<Vec<Value>>>> {
        let blocks = self.read_column_blocks_encoded(fs, col, keep, coalesce_gap, stats)?;
        Ok(blocks
            .into_iter()
            .map(|b| b.map(|view| view.decode()))
            .collect())
    }

    /// The encoded-view mode of
    /// [`read_column_blocks_with`](Self::read_column_blocks_with):
    /// same pruning and coalescing, but surviving blocks come back as
    /// [`EncodedBlock`] views — RLE runs and dictionary codes are *not*
    /// expanded to rows, so predicates can short-circuit on them and
    /// late materialization can gather survivors only.
    pub fn read_column_blocks_encoded(
        &self,
        fs: &dyn eon_storage::FileSystem,
        col: usize,
        keep: &[bool],
        coalesce_gap: Option<u64>,
        stats: &mut ReadStats,
    ) -> Result<Vec<Option<EncodedBlock>>> {
        let meta = self
            .footer
            .columns
            .get(col)
            .ok_or_else(|| EonError::Query(format!("column {col} out of range")))?;
        if keep.len() != meta.blocks.len() {
            return Err(EonError::Internal("keep mask length mismatch".into()));
        }
        let mut out: Vec<Option<EncodedBlock>> = Vec::with_capacity(meta.blocks.len());
        out.resize_with(meta.blocks.len(), || None);

        // Group surviving blocks into runs fetchable with one ranged
        // read. Blocks of one column are laid out in index order, so a
        // run is a span [start_byte, end_byte) covering every kept
        // block in it, plus any skipped blocks tolerated as gap.
        let mut runs: Vec<(Vec<usize>, u64, u64)> = Vec::new(); // (block idxs, start, end)
        for (i, (b, &k)) in meta.blocks.iter().zip(keep).enumerate() {
            if !k {
                continue;
            }
            let merged = match (coalesce_gap, runs.last_mut()) {
                (Some(gap), Some((idxs, _, end))) if b.offset - *end <= gap => {
                    idxs.push(i);
                    *end = b.offset + b.len;
                    true
                }
                _ => false,
            };
            if !merged {
                runs.push((vec![i], b.offset, b.offset + b.len));
            }
        }

        for (idxs, start, end) in runs {
            let raw = fs.read_range(&self.key, start, end - start)?;
            if (raw.len() as u64) < end - start {
                return Err(EonError::Corrupt(format!(
                    "{}: short ranged read ({} < {})",
                    self.key,
                    raw.len(),
                    end - start
                )));
            }
            stats.requests += 1;
            stats.bytes_read += end - start;
            stats.requests_saved += idxs.len() as u64 - 1;
            let kept: u64 = idxs.iter().map(|&i| meta.blocks[i].len).sum();
            stats.gap_bytes += (end - start) - kept;
            stats.waste_bytes += (end - start) - kept;
            for i in idxs {
                let b = &meta.blocks[i];
                let lo = (b.offset - start) as usize;
                let hi = lo + b.len as usize;
                let view = decode_column_view(&mut Reader::new(&raw[lo..hi]))?;
                if view.rows() as u64 != b.rows {
                    return Err(EonError::Corrupt(format!(
                        "{}: block decoded {} rows, footer says {}",
                        self.key,
                        view.rows(),
                        b.rows
                    )));
                }
                out[i] = Some(view);
            }
        }
        Ok(out)
    }
}

/// I/O accounting for coalesced column reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Ranged GETs issued.
    pub requests: u64,
    /// Requests avoided versus one-GET-per-surviving-block.
    pub requests_saved: u64,
    /// Total bytes fetched (including gap bytes).
    pub bytes_read: u64,
    /// Bytes fetched that belong to skipped blocks inside a coalesced
    /// run (the price paid for fewer requests).
    pub gap_bytes: u64,
    /// Bytes fetched and then discarded without contributing a row:
    /// coalescing gap bytes, plus (added by the scan layer) predicate
    /// column blocks whose every row was filtered out after the fetch.
    /// This is the measurable side of the pushdown-vs-coalesce
    /// tradeoff — a select returns none of these bytes.
    pub waste_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_storage::{FileSystem, MemFs};

    fn sample_columns() -> Vec<Vec<Value>> {
        let n = 10_000i64;
        vec![
            (0..n).map(Value::Int).collect(),
            (0..n).map(|i| Value::Str(format!("cust{}", i % 13))).collect(),
            (0..n).map(|i| Value::Float(i as f64 * 0.5)).collect(),
        ]
    }

    fn write_sample(fs: &MemFs, key: &str) -> RosFooter {
        let (bytes, footer) = RosWriter::new().encode(&sample_columns()).unwrap();
        fs.write(key, bytes).unwrap();
        footer
    }

    #[test]
    fn roundtrip_all_columns() {
        let fs = MemFs::new();
        write_sample(&fs, "c1");
        let r = RosReader::open(&fs, "c1").unwrap();
        assert_eq!(r.total_rows(), 10_000);
        assert_eq!(r.column_count(), 3);
        let cols = sample_columns();
        for (i, expect) in cols.iter().enumerate() {
            assert_eq!(&r.read_column(&fs, i).unwrap(), expect);
        }
    }

    #[test]
    fn footer_matches_reader() {
        let fs = MemFs::new();
        let footer = write_sample(&fs, "c1");
        let r = RosReader::open(&fs, "c1").unwrap();
        assert_eq!(r.footer(), &footer);
    }

    #[test]
    fn block_minmax_enable_pruning() {
        let fs = MemFs::new();
        write_sample(&fs, "c1");
        let r = RosReader::open(&fs, "c1").unwrap();
        let col0 = &r.footer().columns[0];
        // 10k rows / 4096 per block = 3 blocks
        assert_eq!(col0.blocks.len(), 3);
        assert_eq!(col0.blocks[0].min, Value::Int(0));
        assert_eq!(col0.blocks[0].max, Value::Int(4095));
        assert_eq!(col0.blocks[2].max, Value::Int(9999));
        assert_eq!(col0.min(), Some(&Value::Int(0)));
        assert_eq!(col0.max(), Some(&Value::Int(9999)));
    }

    #[test]
    fn pruned_read_skips_blocks() {
        let fs = MemFs::new();
        write_sample(&fs, "c1");
        let r = RosReader::open(&fs, "c1").unwrap();
        let blocks = r
            .read_column_blocks(&fs, 0, &[false, true, false])
            .unwrap();
        assert!(blocks[0].is_none());
        assert!(blocks[2].is_none());
        let mid = blocks[1].as_ref().unwrap();
        assert_eq!(mid[0], Value::Int(4096));
        assert_eq!(mid.len(), 4096);
    }

    #[test]
    fn empty_container() {
        let fs = MemFs::new();
        let (bytes, _) = RosWriter::new()
            .encode(&[Vec::new(), Vec::new()])
            .unwrap();
        fs.write("empty", bytes).unwrap();
        let r = RosReader::open(&fs, "empty").unwrap();
        assert_eq!(r.total_rows(), 0);
        assert_eq!(r.column_count(), 2);
        assert!(r.read_column(&fs, 0).unwrap().is_empty());
    }

    #[test]
    fn ragged_columns_rejected() {
        let cols = vec![vec![Value::Int(1)], vec![]];
        assert!(RosWriter::new().encode(&cols).is_err());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let fs = MemFs::new();
        write_sample(&fs, "c1");
        let mut data = fs.read("c1").unwrap().to_vec();
        let n = data.len();
        data[n - 1] ^= 0xff;
        fs.write("c1", Bytes::from(data)).unwrap();
        assert!(matches!(
            RosReader::open(&fs, "c1"),
            Err(EonError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_footer_checksum_rejected() {
        let fs = MemFs::new();
        write_sample(&fs, "c1");
        let mut data = fs.read("c1").unwrap().to_vec();
        let n = data.len();
        // Flip a byte inside the footer (just before the trailer).
        data[n - 20] ^= 0x01;
        fs.write("c1", Bytes::from(data)).unwrap();
        assert!(RosReader::open(&fs, "c1").is_err());
    }

    #[test]
    fn nulls_tracked_in_block_meta() {
        let cols = vec![vec![Value::Null, Value::Int(5), Value::Null]];
        let (bytes, footer) = RosWriter::new().encode(&cols).unwrap();
        let b = &footer.columns[0].blocks[0];
        assert!(b.has_null);
        assert_eq!(b.min, Value::Int(5));
        assert_eq!(b.max, Value::Int(5));
        let fs = MemFs::new();
        fs.write("n", bytes).unwrap();
        let r = RosReader::open(&fs, "n").unwrap();
        assert_eq!(r.read_column(&fs, 0).unwrap(), cols[0]);
    }

    #[test]
    fn all_null_block_meta() {
        let cols = vec![vec![Value::Null, Value::Null]];
        let (_, footer) = RosWriter::new().encode(&cols).unwrap();
        let b = &footer.columns[0].blocks[0];
        assert!(b.min.is_null() && b.max.is_null() && b.has_null);
    }

    #[test]
    fn coalesced_read_matches_per_block_read() {
        let fs = MemFs::new();
        write_sample(&fs, "c1");
        let r = RosReader::open(&fs, "c1").unwrap();
        let keep = [true, true, true];
        let plain = r.read_column_blocks(&fs, 0, &keep).unwrap();
        let gets = fs.stats().gets;
        let mut stats = ReadStats::default();
        let coalesced = r
            .read_column_blocks_with(&fs, 0, &keep, Some(0), &mut stats)
            .unwrap();
        assert_eq!(coalesced, plain);
        // Three adjacent blocks → one ranged read.
        assert_eq!(fs.stats().gets - gets, 1);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.requests_saved, 2);
        assert_eq!(stats.gap_bytes, 0);
    }

    #[test]
    fn coalescing_bridges_small_gaps_only() {
        let fs = MemFs::new();
        write_sample(&fs, "c1");
        let r = RosReader::open(&fs, "c1").unwrap();
        let keep = [true, false, true]; // a pruned block in the middle
        let gap = r.footer().columns[0].blocks[1].len;

        // Gap tolerance below the skipped block: two separate reads,
        // and the skipped slot stays None.
        let mut tight = ReadStats::default();
        let split = r
            .read_column_blocks_with(&fs, 0, &keep, Some(gap - 1), &mut tight)
            .unwrap();
        assert_eq!(tight.requests, 2);
        assert_eq!(tight.gap_bytes, 0);
        assert!(split[1].is_none());

        // Gap tolerance covering it: one read, gap bytes accounted.
        let mut wide = ReadStats::default();
        let merged = r
            .read_column_blocks_with(&fs, 0, &keep, Some(gap), &mut wide)
            .unwrap();
        assert_eq!(wide.requests, 1);
        assert_eq!(wide.requests_saved, 1);
        assert_eq!(wide.gap_bytes, gap);
        assert_eq!(merged, split);
        assert_eq!(merged, r.read_column_blocks(&fs, 0, &keep).unwrap());
    }

    #[test]
    fn forced_encoding_roundtrips_with_fallback() {
        let cols = sample_columns();
        let plain = {
            let fs = MemFs::new();
            write_sample(&fs, "auto");
            let r = RosReader::open(&fs, "auto").unwrap();
            (0..3)
                .map(|c| r.read_column(&fs, c).unwrap())
                .collect::<Vec<_>>()
        };
        for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict, Encoding::Delta] {
            let fs = MemFs::new();
            let (bytes, _) = RosWriter::new()
                .force_encoding(Some(enc))
                .encode(&cols)
                .unwrap();
            fs.write("f", bytes).unwrap();
            let r = RosReader::open(&fs, "f").unwrap();
            for (c, expect) in plain.iter().enumerate() {
                // Delta can't hold the Str/Float columns — the writer
                // falls back, and the data still round-trips.
                assert_eq!(&r.read_column(&fs, c).unwrap(), expect, "{enc:?} col {c}");
            }
        }
    }

    #[test]
    fn encoded_reads_keep_compressed_shape() {
        let fs = MemFs::new();
        let cols = sample_columns();
        let (bytes, _) = RosWriter::new()
            .force_encoding(Some(Encoding::Dict))
            .encode(&cols)
            .unwrap();
        fs.write("d", bytes).unwrap();
        let r = RosReader::open(&fs, "d").unwrap();
        let mut stats = ReadStats::default();
        let keep = vec![true; r.footer().columns[1].blocks.len()];
        let blocks = r
            .read_column_blocks_encoded(&fs, 1, &keep, Some(0), &mut stats)
            .unwrap();
        for b in blocks.iter().flatten() {
            assert!(matches!(b, EncodedBlock::Dict { dict, .. } if dict.len() == 13));
            assert!(b.is_encoded());
        }
        let decoded: Vec<Value> = blocks.into_iter().flatten().flat_map(|b| b.decode()).collect();
        assert_eq!(decoded, cols[1]);
    }

    #[test]
    fn custom_block_size() {
        let cols: Vec<Vec<Value>> = vec![(0..100i64).map(Value::Int).collect()];
        let (bytes, footer) = RosWriter::with_block_rows(10).encode(&cols).unwrap();
        assert_eq!(footer.columns[0].blocks.len(), 10);
        let fs = MemFs::new();
        fs.write("k", bytes).unwrap();
        let r = RosReader::open(&fs, "k").unwrap();
        assert_eq!(r.read_column(&fs, 0).unwrap(), cols[0]);
    }
}
