//! Compact binary codec for on-disk structures: a little-endian writer
//! over `Vec<u8>` and a checked cursor over `Bytes`. All ROS container
//! payloads, footers, and delete vectors flow through this module so the
//! wire format lives in exactly one place.

use bytes::Bytes;
use eon_types::{EonError, Result, Value};

/// Append-only binary writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// LEB128 unsigned varint; the workhorse for delta encoding.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn put_signed_varint(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Tagged value. Tags: 0 null, 1 int, 2 float, 3 str, 4 bool,
    /// 5 date.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Int(i) => {
                self.put_u8(1);
                self.put_signed_varint(*i);
            }
            Value::Float(f) => {
                self.put_u8(2);
                self.put_f64(*f);
            }
            Value::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
            Value::Bool(b) => {
                self.put_u8(4);
                self.put_u8(*b as u8);
            }
            Value::Date(d) => {
                self.put_u8(5);
                self.put_signed_varint(*d as i64);
            }
        }
    }

    /// Raw access for checksums and length back-patching.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Checked binary reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(EonError::Corrupt(format!(
                "short read: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(EonError::Corrupt("varint overflow".into()));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub fn get_signed_varint(&mut self) -> Result<i64> {
        let z = self.get_varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_varint()? as usize;
        self.take(len)
    }

    pub fn get_str(&mut self) -> Result<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| EonError::Corrupt("invalid utf8".into()))
    }

    pub fn get_value(&mut self) -> Result<Value> {
        Ok(match self.get_u8()? {
            0 => Value::Null,
            1 => Value::Int(self.get_signed_varint()?),
            2 => Value::Float(self.get_f64()?),
            3 => Value::Str(self.get_str()?),
            4 => Value::Bool(self.get_u8()? != 0),
            5 => Value::Date(self.get_signed_varint()? as i32),
            t => return Err(EonError::Corrupt(format!("bad value tag {t}"))),
        })
    }
}

/// FNV-1a content checksum used by container footers.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(-12345);
        w.put_f64(2.5);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -12345);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn short_read_is_error_not_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.get_u64().is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let b = w.into_bytes();
            assert_eq!(Reader::new(&b).get_varint().unwrap(), v);
        }
    }

    proptest! {
        #[test]
        fn prop_signed_varint_roundtrip(v: i64) {
            let mut w = Writer::new();
            w.put_signed_varint(v);
            let b = w.into_bytes();
            prop_assert_eq!(Reader::new(&b).get_signed_varint().unwrap(), v);
        }

        #[test]
        fn prop_value_roundtrip(tag in 0u8..6, i: i64, f: f64, s in ".{0,40}", b: bool, d: i32) {
            let v = match tag {
                0 => Value::Null,
                1 => Value::Int(i),
                2 => Value::Float(f),
                3 => Value::Str(s),
                4 => Value::Bool(b),
                _ => Value::Date(d),
            };
            let mut w = Writer::new();
            w.put_value(&v);
            let bytes = w.into_bytes();
            let got = Reader::new(&bytes).get_value().unwrap();
            // Compare via the total order so NaN == NaN.
            prop_assert_eq!(got.cmp(&v), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn checksum_detects_flips() {
        let a = checksum(b"hello world");
        let b = checksum(b"hello worle");
        assert_ne!(a, b);
        assert_eq!(a, checksum(b"hello world"));
    }
}
