//! Projections (paper §2.1–§2.2, Fig 2): sorted, segmented subsets of a
//! table's columns — the *only* physical data structure in Vertica.
//!
//! A projection definition names which table columns it carries, their
//! total sort order, and how tuples distribute: `SEGMENTED BY
//! HASH(cols)` or replicated to every subscriber. The definition is a
//! global catalog object; the containers realizing it are shard-scoped.

use serde::{Deserialize, Serialize};

use eon_types::{Result, Schema, Value};

/// Distribution of a projection's tuples across the hash space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segmentation {
    /// `SEGMENTED BY HASH(<cols>)`; indices are positions *within the
    /// projection's own column list*.
    Segmented { cols: Vec<usize> },
    /// Every subscriber stores every tuple (dimension tables).
    Replicated,
}

/// The projection sort order: projection-local column indices, major
/// first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SortOrder(pub Vec<usize>);

/// Aggregate functions a Live Aggregate Projection can maintain (§2.1).
/// Only functions whose partials merge by re-applying the same function
/// (plus COUNT, which merges by summation) — AVG and DISTINCT need
/// richer state and are answered from base projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LapFunc {
    Sum,
    Min,
    Max,
    /// COUNT(*) per group.
    CountStar,
}

/// A Live Aggregate Projection definition (§2.1): the projection's rows
/// are *pre-computed partial aggregates* of the base table, grouped by
/// `group_by`. Loads fold their batch into partial rows before writing;
/// queries whose aggregation matches read dramatically fewer rows. The
/// trade-off is a restriction on base-table updates: DELETE/UPDATE are
/// rejected while a LAP exists (tombstones cannot be applied to
/// pre-aggregated rows).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveAggregate {
    /// Grouping columns, as base-table indices.
    pub group_by: Vec<usize>,
    /// Aggregates: function + base-table source column (ignored for
    /// CountStar).
    pub aggs: Vec<(LapFunc, usize)>,
}

/// A projection definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Projection {
    pub name: String,
    /// Indices into the base table schema, in projection column order.
    /// For a Live Aggregate Projection: the group-by columns followed
    /// by the aggregates' source columns (whose *stored* values are the
    /// aggregated results).
    pub columns: Vec<usize>,
    pub sort: SortOrder,
    pub segmentation: Segmentation,
    /// Present iff this is a Live Aggregate Projection (§2.1).
    #[serde(default)]
    pub live_aggregate: Option<LiveAggregate>,
}

impl Projection {
    /// A "superprojection": all table columns, sorted and segmented by
    /// the given table-schema column indices. What the Database
    /// Designer emits when nothing fancier is requested.
    pub fn super_projection(
        name: impl Into<String>,
        schema: &Schema,
        sort_cols: &[usize],
        seg_cols: &[usize],
    ) -> Self {
        Projection {
            name: name.into(),
            columns: (0..schema.len()).collect(),
            sort: SortOrder(sort_cols.to_vec()),
            segmentation: Segmentation::Segmented {
                cols: seg_cols.to_vec(),
            },
            live_aggregate: None,
        }
    }

    /// A replicated all-columns projection (for dimension tables).
    pub fn replicated(name: impl Into<String>, schema: &Schema, sort_cols: &[usize]) -> Self {
        Projection {
            name: name.into(),
            columns: (0..schema.len()).collect(),
            sort: SortOrder(sort_cols.to_vec()),
            segmentation: Segmentation::Replicated,
            live_aggregate: None,
        }
    }

    /// A Live Aggregate Projection over `group_by` (base-table column
    /// indices) maintaining `aggs`. Sorted and segmented by the group
    /// columns, so equal groups land in one shard — grouped reads are
    /// local (§4) and the pre-aggregation is maximally effective.
    pub fn live_aggregate(
        name: impl Into<String>,
        group_by: &[usize],
        aggs: Vec<(LapFunc, usize)>,
    ) -> Self {
        let mut columns: Vec<usize> = group_by.to_vec();
        columns.extend(aggs.iter().map(|(_, c)| *c));
        let local: Vec<usize> = (0..group_by.len()).collect();
        Projection {
            name: name.into(),
            columns,
            sort: SortOrder(local.clone()),
            segmentation: Segmentation::Segmented { cols: local },
            live_aggregate: Some(LiveAggregate {
                group_by: group_by.to_vec(),
                aggs,
            }),
        }
    }

    pub fn is_live_aggregate(&self) -> bool {
        self.live_aggregate.is_some()
    }

    pub fn is_replicated(&self) -> bool {
        matches!(self.segmentation, Segmentation::Replicated)
    }

    /// Segmentation columns (projection-local indices), empty when
    /// replicated.
    pub fn seg_cols(&self) -> &[usize] {
        match &self.segmentation {
            Segmentation::Segmented { cols } => cols,
            Segmentation::Replicated => &[],
        }
    }

    /// The schema of this projection derived from the table schema.
    pub fn schema(&self, table_schema: &Schema) -> Schema {
        table_schema.project(&self.columns)
    }

    /// Map a full table row to this projection's column subset.
    pub fn project_row(&self, table_row: &[Value]) -> Vec<Value> {
        self.columns.iter().map(|&i| table_row[i].clone()).collect()
    }

    /// Sort projection rows by the projection sort order. Stable so
    /// ties keep load order, which keeps mergeout deterministic.
    pub fn sort_rows(&self, rows: &mut [Vec<Value>]) {
        let keys = &self.sort.0;
        rows.sort_by(|a, b| {
            for &k in keys {
                match a[k].cmp(&b[k]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Check that all referenced indices are in range for the table
    /// schema (run at CREATE PROJECTION time).
    pub fn validate(&self, table_schema: &Schema) -> Result<()> {
        for &c in &self.columns {
            if c >= table_schema.len() {
                return Err(eon_types::EonError::Catalog(format!(
                    "projection {}: column index {c} out of range",
                    self.name
                )));
            }
        }
        for &s in &self.sort.0 {
            if s >= self.columns.len() {
                return Err(eon_types::EonError::Catalog(format!(
                    "projection {}: sort index {s} out of range",
                    self.name
                )));
            }
        }
        for &s in self.seg_cols() {
            if s >= self.columns.len() {
                return Err(eon_types::EonError::Catalog(format!(
                    "projection {}: segmentation index {s} out of range",
                    self.name
                )));
            }
        }
        if let Some(lap) = &self.live_aggregate {
            if lap.group_by.is_empty() {
                return Err(eon_types::EonError::Catalog(format!(
                    "live aggregate projection {} needs group columns",
                    self.name
                )));
            }
            for &c in lap.group_by.iter().chain(lap.aggs.iter().map(|(_, c)| c)) {
                if c >= table_schema.len() {
                    return Err(eon_types::EonError::Catalog(format!(
                        "live aggregate projection {}: column {c} out of range",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_types::schema;

    fn sales_schema() -> Schema {
        schema![("sale_id", Int), ("customer", Str), ("date", Date), ("price", Int)]
    }

    #[test]
    fn super_projection_covers_all_columns() {
        let s = sales_schema();
        let p = Projection::super_projection("p1", &s, &[2], &[0]);
        assert_eq!(p.columns, vec![0, 1, 2, 3]);
        assert!(p.validate(&s).is_ok());
        assert_eq!(p.schema(&s), s);
    }

    #[test]
    fn narrow_projection_like_fig2() {
        // Fig 2's projection 2: (customer, price) sorted by customer,
        // segmented by HASH(customer).
        let s = sales_schema();
        let p = Projection {
            name: "p2".into(),
            columns: vec![1, 3],
            sort: SortOrder(vec![0]),
            segmentation: Segmentation::Segmented { cols: vec![0] },
            live_aggregate: None,
        };
        assert!(p.validate(&s).is_ok());
        let row = vec![
            Value::Int(1),
            Value::Str("Grace".into()),
            Value::Date(17500),
            Value::Int(50),
        ];
        assert_eq!(
            p.project_row(&row),
            vec![Value::Str("Grace".into()), Value::Int(50)]
        );
    }

    #[test]
    fn sort_rows_respects_order() {
        let s = sales_schema();
        let p = Projection::super_projection("p", &s, &[1, 3], &[0]);
        let mut rows = vec![
            vec![Value::Int(1), Value::Str("b".into()), Value::Date(0), Value::Int(9)],
            vec![Value::Int(2), Value::Str("a".into()), Value::Date(0), Value::Int(5)],
            vec![Value::Int(3), Value::Str("a".into()), Value::Date(0), Value::Int(1)],
        ];
        p.sort_rows(&mut rows);
        assert_eq!(rows[0][0], Value::Int(3)); // (a, 1)
        assert_eq!(rows[1][0], Value::Int(2)); // (a, 5)
        assert_eq!(rows[2][0], Value::Int(1)); // (b, 9)
    }

    #[test]
    fn validate_rejects_bad_indices() {
        let s = sales_schema();
        let mut p = Projection::super_projection("p", &s, &[0], &[0]);
        p.columns.push(99);
        assert!(p.validate(&s).is_err());

        let p2 = Projection {
            name: "p2".into(),
            columns: vec![0],
            sort: SortOrder(vec![5]),
            segmentation: Segmentation::Replicated,
            live_aggregate: None,
        };
        assert!(p2.validate(&s).is_err());
    }

    #[test]
    fn replicated_has_no_seg_cols() {
        let s = sales_schema();
        let p = Projection::replicated("rep", &s, &[0]);
        assert!(p.is_replicated());
        assert!(p.seg_cols().is_empty());
    }
}
