//! Min/max pruning (paper §2.1): "Vertica accomplishes this by tracking
//! minimum and maximum values of columns in each storage and using
//! expression analysis to determine if a predicate could ever be true
//! for the given minimum and maximum."
//!
//! [`Predicate`] is the *pushed-down* predicate language: simple
//! column-vs-literal comparisons plus boolean combinators — rich enough
//! for TPC-H's date-range and equality filters, which is what drives the
//! file pruning the paper describes. Arbitrary expressions live in
//! `eon-exec`; the planner extracts the prunable part into this form.

use eon_types::Value;
use serde::{Deserialize, Serialize};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Min/max/null statistics for one column of one block or container.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Minimum non-null value; `Null` means the column slice is all
    /// null.
    pub min: Value,
    pub max: Value,
    pub has_null: bool,
}

/// A pushed-down scan predicate over projection-local column indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (scan everything).
    True,
    Cmp {
        col: usize,
        op: CmpOp,
        lit: Value,
    },
    IsNull(usize),
    IsNotNull(usize),
    And(Vec<Predicate>),
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructors.
    pub fn eq(col: usize, lit: impl Into<Value>) -> Self {
        Predicate::Cmp {
            col,
            op: CmpOp::Eq,
            lit: lit.into(),
        }
    }

    pub fn cmp(col: usize, op: CmpOp, lit: impl Into<Value>) -> Self {
        Predicate::Cmp {
            col,
            op,
            lit: lit.into(),
        }
    }

    pub fn and(preds: Vec<Predicate>) -> Self {
        match preds.len() {
            0 => Predicate::True,
            1 => preds.into_iter().next().unwrap(),
            _ => Predicate::And(preds),
        }
    }

    /// Evaluate against a materialized row. SQL three-valued logic is
    /// collapsed to "NULL comparisons are false", which matches WHERE
    /// semantics.
    pub fn eval_row(&self, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, lit } => {
                let v = &row[*col];
                if v.is_null() || lit.is_null() {
                    return false;
                }
                let ord = v.cmp(lit);
                match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                }
            }
            Predicate::IsNull(col) => row[*col].is_null(),
            Predicate::IsNotNull(col) => !row[*col].is_null(),
            Predicate::And(ps) => ps.iter().all(|p| p.eval_row(row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval_row(row)),
        }
    }

    /// Expression analysis against min/max statistics: could any row in
    /// a storage with these stats satisfy the predicate? `stats(col)`
    /// returns `None` when statistics are unavailable for the column, in
    /// which case the answer must be conservative (`true`).
    ///
    /// Soundness invariant (property-tested): if `eval_row(row)` is true
    /// for any row drawn from the stats' ranges, `could_match` is true.
    pub fn could_match(&self, stats: &dyn Fn(usize) -> Option<ColumnStats>) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, lit } => {
                let Some(s) = stats(*col) else { return true };
                if lit.is_null() {
                    return false; // comparisons with NULL never match
                }
                if s.min.is_null() {
                    // All-null column slice: comparisons cannot match.
                    return false;
                }
                match op {
                    CmpOp::Eq => s.min <= *lit && *lit <= s.max,
                    // Ne can only be pruned when every value equals lit.
                    CmpOp::Ne => !(s.min == *lit && s.max == *lit),
                    CmpOp::Lt => s.min < *lit,
                    CmpOp::Le => s.min <= *lit,
                    CmpOp::Gt => s.max > *lit,
                    CmpOp::Ge => s.max >= *lit,
                }
            }
            Predicate::IsNull(col) => stats(*col).map(|s| s.has_null).unwrap_or(true),
            Predicate::IsNotNull(col) => stats(*col).map(|s| !s.min.is_null()).unwrap_or(true),
            Predicate::And(ps) => ps.iter().all(|p| p.could_match(stats)),
            Predicate::Or(ps) => ps.iter().any(|p| p.could_match(stats)),
        }
    }

    /// Columnar evaluation over one block: returns a selection vector
    /// of `rows` booleans, one per row, equal to what
    /// [`eval_row`](Self::eval_row) would produce on materialized rows.
    /// `cols` is indexed by predicate column index; columns the
    /// predicate doesn't touch may be `BlockCol::Const(&Value::Null)`
    /// placeholders.
    ///
    /// This is where compression-aware execution pays off: an RLE
    /// column is tested once per run (the verdict fans across the run)
    /// and a dictionary column once per distinct value (a code-indexed
    /// verdict table maps codes to booleans), instead of once per row.
    pub fn eval_block(&self, cols: &[BlockCol<'_>], rows: usize) -> Vec<bool> {
        match self {
            Predicate::True => vec![true; rows],
            Predicate::Cmp { col, op, lit } => {
                let test = |v: &Value| {
                    if v.is_null() || lit.is_null() {
                        return false;
                    }
                    let ord = v.cmp(lit);
                    match op {
                        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                        CmpOp::Lt => ord == std::cmp::Ordering::Less,
                        CmpOp::Le => ord != std::cmp::Ordering::Greater,
                        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                        CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    }
                };
                cols[*col].test_rows(rows, &test)
            }
            Predicate::IsNull(col) => cols[*col].test_rows(rows, &|v| v.is_null()),
            Predicate::IsNotNull(col) => cols[*col].test_rows(rows, &|v| !v.is_null()),
            Predicate::And(ps) => {
                let mut sel = vec![true; rows];
                for p in ps {
                    let s = p.eval_block(cols, rows);
                    for (a, b) in sel.iter_mut().zip(s) {
                        *a &= b;
                    }
                    if sel.iter().all(|&k| !k) {
                        break;
                    }
                }
                sel
            }
            Predicate::Or(ps) => {
                let mut sel = vec![false; rows];
                for p in ps {
                    let s = p.eval_block(cols, rows);
                    for (a, b) in sel.iter_mut().zip(s) {
                        *a |= b;
                    }
                    if sel.iter().all(|&k| k) {
                        break;
                    }
                }
                sel
            }
        }
    }
}

/// One column of one block, as seen by [`Predicate::eval_block`].
#[derive(Debug, Clone, Copy)]
pub enum BlockCol<'a> {
    /// Decoded per-row values.
    Values(&'a [Value]),
    /// Every row carries this value — e.g. a column added to the table
    /// after the container was written, materialized from the default.
    Const(&'a Value),
    /// Run-length-encoded rows: (run length, value) pairs whose lengths
    /// sum to the block's row count. Predicates test each run once.
    Rle(&'a [(u64, Value)]),
    /// Dictionary-encoded rows: distinct values plus one in-range code
    /// per row. Predicates test each dictionary entry once.
    Dict {
        dict: &'a [Value],
        codes: &'a [u32],
    },
}

impl BlockCol<'_> {
    /// Apply a per-value test across the block's `rows`, exploiting the
    /// encoding: one test per run for RLE, one per dictionary entry for
    /// Dict, one total for Const.
    fn test_rows(&self, rows: usize, test: &dyn Fn(&Value) -> bool) -> Vec<bool> {
        match self {
            BlockCol::Values(vs) => vs.iter().map(test).collect(),
            BlockCol::Const(v) => vec![test(v); rows],
            BlockCol::Rle(runs) => {
                let mut sel = Vec::with_capacity(rows);
                for (run, v) in *runs {
                    sel.resize(sel.len() + *run as usize, test(v));
                }
                sel
            }
            BlockCol::Dict { dict, codes } => {
                let verdicts: Vec<bool> = dict.iter().map(test).collect();
                codes.iter().map(|&c| verdicts[c as usize]).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn int_stats(min: i64, max: i64) -> ColumnStats {
        ColumnStats {
            min: Value::Int(min),
            max: Value::Int(max),
            has_null: false,
        }
    }

    #[test]
    fn eval_basic_comparisons() {
        let row = vec![Value::Int(5), Value::Str("x".into()), Value::Null];
        assert!(Predicate::eq(0, 5i64).eval_row(&row));
        assert!(!Predicate::eq(0, 6i64).eval_row(&row));
        assert!(Predicate::cmp(0, CmpOp::Lt, 6i64).eval_row(&row));
        assert!(Predicate::cmp(1, CmpOp::Ge, "x").eval_row(&row));
        // NULL comparisons are false, IS NULL is true
        assert!(!Predicate::eq(2, 0i64).eval_row(&row));
        assert!(Predicate::IsNull(2).eval_row(&row));
        assert!(!Predicate::IsNotNull(2).eval_row(&row));
    }

    #[test]
    fn and_or_combinators() {
        let row = vec![Value::Int(5)];
        let p = Predicate::And(vec![
            Predicate::cmp(0, CmpOp::Gt, 1i64),
            Predicate::cmp(0, CmpOp::Lt, 10i64),
        ]);
        assert!(p.eval_row(&row));
        let q = Predicate::Or(vec![Predicate::eq(0, 1i64), Predicate::eq(0, 5i64)]);
        assert!(q.eval_row(&row));
        assert!(Predicate::and(vec![]).eval_row(&row)); // empty AND = True
    }

    #[test]
    fn pruning_date_range_scenario() {
        // Paper's example: table partitioned by day; predicate on the
        // recent week excludes files from older days.
        let old_block = |_c: usize| Some(int_stats(100, 200));
        let new_block = |_c: usize| Some(int_stats(300, 400));
        let recent = Predicate::cmp(0, CmpOp::Gt, 250i64);
        assert!(!recent.could_match(&old_block));
        assert!(recent.could_match(&new_block));
    }

    #[test]
    fn pruning_is_conservative_without_stats() {
        let none = |_c: usize| None;
        assert!(Predicate::eq(0, 7i64).could_match(&none));
        assert!(Predicate::IsNull(0).could_match(&none));
    }

    #[test]
    fn all_null_slice_prunes_comparisons() {
        let stats = |_c: usize| {
            Some(ColumnStats {
                min: Value::Null,
                max: Value::Null,
                has_null: true,
            })
        };
        assert!(!Predicate::eq(0, 7i64).could_match(&stats));
        assert!(Predicate::IsNull(0).could_match(&stats));
        assert!(!Predicate::IsNotNull(0).could_match(&stats));
    }

    #[test]
    fn ne_pruning_only_for_constant_blocks() {
        let constant = |_c: usize| Some(int_stats(7, 7));
        let varied = |_c: usize| Some(int_stats(7, 9));
        let ne = Predicate::cmp(0, CmpOp::Ne, 7i64);
        assert!(!ne.could_match(&constant));
        assert!(ne.could_match(&varied));
    }

    proptest! {
        /// `eval_block` over columnar data must agree with `eval_row`
        /// over materialized rows, including nulls, Const columns
        /// (post-write table defaults), and nested combinators.
        #[test]
        fn prop_eval_block_matches_eval_row(
            col0 in proptest::collection::vec(
                (-7i64..5).prop_map(|v| if v < -5 { Value::Null } else { Value::Int(v) }),
                1..40,
            ),
            dflt_raw in -7i64..5,
            lit0 in -6i64..6,
            lit1 in -6i64..6,
            op_idx in 0usize..6,
        ) {
            let rows = col0.len();
            let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op_idx];
            let dflt = if dflt_raw < -5 { Value::Null } else { Value::Int(dflt_raw) };
            let p = Predicate::Or(vec![
                Predicate::And(vec![
                    Predicate::cmp(0, op, lit0),
                    Predicate::IsNotNull(1),
                ]),
                Predicate::eq(1, lit1),
                Predicate::IsNull(0),
            ]);
            let cols = [BlockCol::Values(&col0), BlockCol::Const(&dflt)];
            let sel = p.eval_block(&cols, rows);
            for (i, v) in col0.iter().enumerate() {
                let row = vec![v.clone(), dflt.clone()];
                prop_assert_eq!(sel[i], p.eval_row(&row), "row {}", i);
            }
        }

        /// The encoded `BlockCol` views (RLE runs, dictionary codes)
        /// must produce the same selection vector as the decoded
        /// per-row view for every predicate shape.
        #[test]
        fn prop_encoded_views_match_values_view(
            col0 in proptest::collection::vec(
                (-7i64..5).prop_map(|v| if v < -5 { Value::Null } else { Value::Int(v) }),
                1..60,
            ),
            lit0 in -6i64..6,
            op_idx in 0usize..6,
        ) {
            let rows = col0.len();
            let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op_idx];
            let p = Predicate::Or(vec![
                Predicate::cmp(0, op, lit0),
                Predicate::IsNull(0),
            ]);
            let baseline = p.eval_block(&[BlockCol::Values(&col0)], rows);

            // Build RLE runs from the raw rows.
            let mut runs: Vec<(u64, Value)> = Vec::new();
            for v in &col0 {
                match runs.last_mut() {
                    Some((n, last)) if last == v => *n += 1,
                    _ => runs.push((1, v.clone())),
                }
            }
            prop_assert_eq!(&p.eval_block(&[BlockCol::Rle(&runs)], rows), &baseline);

            // Build a first-appearance dictionary.
            let mut dict: Vec<Value> = Vec::new();
            let mut codes: Vec<u32> = Vec::new();
            for v in &col0 {
                let code = match dict.iter().position(|d| d == v) {
                    Some(i) => i,
                    None => { dict.push(v.clone()); dict.len() - 1 }
                };
                codes.push(code as u32);
            }
            let dcol = BlockCol::Dict { dict: &dict, codes: &codes };
            prop_assert_eq!(&p.eval_block(&[dcol], rows), &baseline);
        }

        /// Soundness: a block is never pruned if it contains a matching
        /// row. Generate a block of ints, derive true stats, check every
        /// predicate shape.
        #[test]
        fn prop_pruning_never_loses_rows(
            vals in proptest::collection::vec(-50i64..50, 1..60),
            lit in -60i64..60,
            op_idx in 0usize..6,
        ) {
            let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op_idx];
            let min = *vals.iter().min().unwrap();
            let max = *vals.iter().max().unwrap();
            let stats = move |_c: usize| Some(int_stats(min, max));
            let p = Predicate::cmp(0, op, lit);
            let any_match = vals.iter().any(|&v| p.eval_row(&[Value::Int(v)]));
            if any_match {
                prop_assert!(p.could_match(&stats), "pruned a matching block: op={op:?} lit={lit}");
            }
        }
    }
}
