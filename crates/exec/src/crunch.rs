//! Crunch scaling (paper §4.4): letting *several* nodes collectively
//! serve one segment shard when node count exceeds shard count.
//!
//! Two mechanisms, both implemented as scan post-filters a node applies
//! to the rows of a shared shard:
//!
//! * **Hash filter** — re-hash each row with a finer segmentation
//!   predicate; worker `i` of `k` keeps rows whose sub-hash lands in its
//!   slice. Every worker reads the whole shard (worst case) but
//!   processes `1/k` of it, and the segmentation property is preserved
//!   *at the finer granularity* (local joins still work if both sides
//!   apply the same sub-split).
//! * **Container split** — workers partition the shard's containers;
//!   worker `i` scans only its containers. One read per row
//!   cluster-wide and good I/O, at the cost of skew vulnerability and
//!   the loss of the segmentation property (the paper's trade-off,
//!   which `bench/ablate_crunch` measures).

use eon_types::{hash_row_32, HashRange, Value};

/// A worker's share of a crunch-scaled shard scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrunchSlice {
    /// This worker's index within the group sharing the shard.
    pub worker: usize,
    /// Number of workers sharing the shard.
    pub of: usize,
}

impl CrunchSlice {
    pub fn new(worker: usize, of: usize) -> Self {
        assert!(of > 0 && worker < of, "invalid crunch slice {worker}/{of}");
        CrunchSlice { worker, of }
    }

    /// The whole shard (no split).
    pub fn all() -> Self {
        CrunchSlice { worker: 0, of: 1 }
    }

    pub fn is_split(&self) -> bool {
        self.of > 1
    }

    /// Hash-filter: does this worker keep the row? Applies a *second*
    /// hash-segmentation predicate over the same segmentation columns
    /// (decorrelated from the shard hash by a salt, otherwise every row
    /// of the shard would land on the same sub-slice).
    pub fn keeps_row(&self, row: &[Value], seg_cols: &[usize]) -> bool {
        if self.of == 1 {
            return true;
        }
        // Salt by rotating in a constant so the sub-split is independent
        // of the shard split even though both hash the same columns.
        let h = hash_row_32(row, seg_cols).rotate_left(16) ^ 0x9e37_79b9;
        HashRange::even_index(h, self.of) == self.worker
    }

    /// Container-split: which of `container_count` containers this
    /// worker scans (round-robin by index).
    pub fn container_indices(&self, container_count: usize) -> Vec<usize> {
        (0..container_count)
            .filter(|i| i % self.of == self.worker)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Vec<Value> {
        vec![Value::Int(v)]
    }

    #[test]
    fn workers_partition_rows_exactly() {
        // Every row kept by exactly one worker.
        for of in [2, 3, 5] {
            let slices: Vec<CrunchSlice> = (0..of).map(|w| CrunchSlice::new(w, of)).collect();
            for v in 0..500 {
                let keepers = slices
                    .iter()
                    .filter(|s| s.keeps_row(&row(v), &[0]))
                    .count();
                assert_eq!(keepers, 1, "row {v} kept by {keepers} workers (of={of})");
            }
        }
    }

    #[test]
    fn split_is_reasonably_balanced() {
        let a = CrunchSlice::new(0, 2);
        let kept = (0..2000).filter(|&v| a.keeps_row(&row(v), &[0])).count();
        assert!((800..1200).contains(&kept), "kept={kept}");
    }

    #[test]
    fn sub_split_decorrelated_from_shard_hash() {
        // Rows of ONE shard must still split across workers. Take rows
        // landing in shard 0 of 3, then check worker split is not
        // degenerate.
        let shard_rows: Vec<i64> = (0..3000)
            .filter(|&v| {
                HashRange::even_index(hash_row_32(&row(v), &[0]), 3) == 0
            })
            .collect();
        assert!(shard_rows.len() > 500);
        let w0 = CrunchSlice::new(0, 2);
        let kept = shard_rows
            .iter()
            .filter(|&&v| w0.keeps_row(&row(v), &[0]))
            .count();
        let frac = kept as f64 / shard_rows.len() as f64;
        assert!((0.35..0.65).contains(&frac), "frac={frac}");
    }

    #[test]
    fn same_key_same_worker() {
        // The finer segmentation property: equal keys always land on
        // the same worker, so sub-split local joins remain possible.
        let s = CrunchSlice::new(1, 3);
        for v in 0..100 {
            assert_eq!(
                s.keeps_row(&row(v), &[0]),
                s.keeps_row(&row(v), &[0]),
            );
        }
    }

    #[test]
    fn container_split_partitions_indices() {
        let a = CrunchSlice::new(0, 2).container_indices(5);
        let b = CrunchSlice::new(1, 2).container_indices(5);
        assert_eq!(a, vec![0, 2, 4]);
        assert_eq!(b, vec![1, 3]);
    }

    #[test]
    fn unsplit_slice_keeps_everything() {
        let s = CrunchSlice::all();
        assert!(!s.is_split());
        assert!(s.keeps_row(&row(7), &[0]));
        assert_eq!(s.container_indices(3), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn invalid_slice_panics() {
        CrunchSlice::new(2, 2);
    }
}
