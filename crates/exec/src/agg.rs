//! Hash aggregation with mergeable partial states.
//!
//! Distributed group-by (paper §4: "efficient distributed aggregations")
//! runs the same machinery twice: every participating node folds its
//! local rows into [`AggState`]s, ships the *states* to the
//! coordinator, and the coordinator merges. Co-segmented group-bys
//! would allow skipping the merge; we always merge because states are
//! tiny and it is unconditionally correct.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use eon_types::{Result, Value};

use crate::ops::Rows;
use crate::plan::{AggFunc, AggSpec};

/// A mergeable partial aggregate. Serializable so nodes can ship states
/// to the coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggState {
    Sum { acc: Value },
    Count { n: i64 },
    Avg { sum: Value, n: i64 },
    Min { acc: Value },
    Max { acc: Value },
    /// Distinct values seen (BTreeSet: deterministic iteration, and
    /// `Value` is `Ord`).
    Distinct { seen: BTreeSet<Value> },
}

fn add_values(acc: &Value, v: &Value) -> Value {
    match (acc, v) {
        (Value::Null, x) => x.clone(),
        (x, Value::Null) => x.clone(),
        (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
        (a, b) => Value::Float(a.as_float().unwrap_or(0.0) + b.as_float().unwrap_or(0.0)),
    }
}

/// `acc += v` applied `n ≥ 2` times, bit-exactly.
fn sum_repeated(acc: &mut Value, v: &Value, n: u64) {
    match (&*acc, v) {
        // Int-only arithmetic is modular: n repeated wrapping adds
        // equal one wrapping multiply.
        (Value::Null | Value::Int(_), Value::Int(b)) => {
            *acc = add_values(acc, &Value::Int(b.wrapping_mul(n as i64)));
        }
        // A float anywhere: replay the additions so rounding matches
        // the row-at-a-time path exactly.
        _ => {
            for _ in 0..n {
                *acc = add_values(acc, v);
            }
        }
    }
}

/// Structural row equality for run detection: stricter than `Value`'s
/// comparison-based `==` (which deems `Int(1) == Float(1.0)` and all
/// NaNs equal). A run must never span a representation change — the
/// accumulator's type evolution depends on the exact variant it sees.
fn same_repr(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Date(x), Value::Date(y)) => x == y,
        _ => false,
    }
}

fn same_row(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| same_repr(x, y))
}

impl AggState {
    /// Fresh state for a function.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Sum => AggState::Sum { acc: Value::Null },
            AggFunc::Count | AggFunc::CountStar => AggState::Count { n: 0 },
            AggFunc::Avg => AggState::Avg {
                sum: Value::Null,
                n: 0,
            },
            AggFunc::Min => AggState::Min { acc: Value::Null },
            AggFunc::Max => AggState::Max { acc: Value::Null },
            AggFunc::CountDistinct => AggState::Distinct {
                seen: BTreeSet::new(),
            },
        }
    }

    /// Fold one input value (already evaluated from the agg's expr).
    /// SQL semantics: NULL inputs are ignored by every aggregate except
    /// COUNT(*) (which the executor feeds a literal).
    pub fn update(&mut self, v: &Value) {
        match self {
            AggState::Count { n } => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggState::Sum { acc } => {
                if !v.is_null() {
                    *acc = add_values(acc, v);
                }
            }
            AggState::Avg { sum, n } => {
                if !v.is_null() {
                    *sum = add_values(sum, v);
                    *n += 1;
                }
            }
            AggState::Min { acc } => {
                if !v.is_null() && (acc.is_null() || v < acc) {
                    *acc = v.clone();
                }
            }
            AggState::Max { acc } => {
                if !v.is_null() && (acc.is_null() || v > acc) {
                    *acc = v.clone();
                }
            }
            AggState::Distinct { seen } => {
                if !v.is_null() {
                    seen.insert(v.clone());
                }
            }
        }
    }

    /// Fold the same input value `n` times — the RLE fast path for
    /// aggregates over runs of identical rows.
    ///
    /// Exactness contract (property-tested): the result is *byte
    /// identical* to calling [`update`](Self::update) `n` times.
    /// COUNT adds `n`; an Int sum over an Int/empty accumulator takes
    /// one wrapping multiply (repeated wrapping adds ≡ one wrapping
    /// multiply, modular arithmetic); any float involvement replays
    /// the adds, because repeated float addition is not `v * n` at the
    /// bit level; MIN/MAX/DISTINCT are idempotent — once is enough.
    pub fn update_repeated(&mut self, v: &Value, n: u64) {
        if n == 0 {
            return;
        }
        if n == 1 || v.is_null() {
            return self.update(v);
        }
        match self {
            AggState::Count { n: c } => *c += n as i64,
            AggState::Sum { acc } => sum_repeated(acc, v, n),
            AggState::Avg { sum, n: c } => {
                sum_repeated(sum, v, n);
                *c += n as i64;
            }
            AggState::Min { .. } | AggState::Max { .. } | AggState::Distinct { .. } => {
                self.update(v)
            }
        }
    }

    /// Merge another partial state of the same shape into this one.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count { n }, AggState::Count { n: m }) => *n += m,
            (AggState::Sum { acc }, AggState::Sum { acc: b }) => *acc = add_values(acc, b),
            (AggState::Avg { sum, n }, AggState::Avg { sum: s2, n: m }) => {
                *sum = add_values(sum, s2);
                *n += m;
            }
            (AggState::Min { acc }, AggState::Min { acc: b }) => {
                if !b.is_null() && (acc.is_null() || b < acc) {
                    *acc = b.clone();
                }
            }
            (AggState::Max { acc }, AggState::Max { acc: b }) => {
                if !b.is_null() && (acc.is_null() || b > acc) {
                    *acc = b.clone();
                }
            }
            (AggState::Distinct { seen }, AggState::Distinct { seen: s2 }) => {
                seen.extend(s2.iter().cloned());
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    /// Produce the final SQL value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Sum { acc } => acc.clone(),
            AggState::Count { n } => Value::Int(*n),
            AggState::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.as_float().unwrap_or(0.0) / *n as f64)
                }
            }
            AggState::Min { acc } | AggState::Max { acc } => acc.clone(),
            AggState::Distinct { seen } => Value::Int(seen.len() as i64),
        }
    }
}

/// One group's partial result: key columns + per-agg states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialGroup {
    pub key: Vec<Value>,
    pub states: Vec<AggState>,
}

/// Partial aggregates of one batch of rows.
pub type Partials = Vec<PartialGroup>;

/// Fold rows into partial aggregates.
///
/// RLE fast path (DESIGN.md "Compression-aware execution"): scans over
/// run-length-encoded containers materialize long stretches of
/// identical rows, so the fold detects runs of structurally identical
/// consecutive rows and advances group lookup and expression
/// evaluation once per run — [`AggState::update_repeated`] folds the
/// whole run bit-exactly.
pub fn aggregate_partial(rows: &Rows, group_by: &[usize], aggs: &[AggSpec]) -> Result<Partials> {
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut i = 0;
    while i < rows.len() {
        let row = &rows[i];
        let mut j = i + 1;
        while j < rows.len() && same_row(&rows[j], row) {
            j += 1;
        }
        let n = (j - i) as u64;
        let key: Vec<Value> = group_by.iter().map(|&c| row[c].clone()).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect());
        for (st, spec) in states.iter_mut().zip(aggs) {
            let v = spec.expr.eval(row)?;
            st.update_repeated(&v, n);
        }
        i = j;
    }
    // SQL: a global aggregate (no GROUP BY) over zero rows still
    // produces one output row (COUNT = 0, SUM = NULL, …).
    if group_by.is_empty() && groups.is_empty() {
        groups.insert(
            Vec::new(),
            aggs.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }
    let mut out: Partials = groups
        .into_iter()
        .map(|(key, states)| PartialGroup { key, states })
        .collect();
    // Deterministic order for tests and stable merges.
    out.sort_by(|a, b| a.key.cmp(&b.key));
    Ok(out)
}

/// Merge several nodes' partials into one.
pub fn merge_partials(parts: Vec<Partials>, aggs: &[AggSpec]) -> Partials {
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for part in parts {
        for pg in part {
            match groups.entry(pg.key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (st, other) in e.get_mut().iter_mut().zip(&pg.states) {
                        st.merge(other);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(pg.states);
                }
            }
        }
    }
    let _ = aggs;
    let mut out: Partials = groups
        .into_iter()
        .map(|(key, states)| PartialGroup { key, states })
        .collect();
    out.sort_by(|a, b| a.key.cmp(&b.key));
    out
}

/// Finalize partials into output rows: key columns then agg columns.
pub fn finalize_partials(parts: Partials) -> Rows {
    parts
        .into_iter()
        .map(|pg| {
            let mut row = pg.key;
            row.extend(pg.states.iter().map(|s| s.finalize()));
            row
        })
        .collect()
}

/// Single-phase aggregation (fold + finalize).
pub fn aggregate(rows: &Rows, group_by: &[usize], aggs: &[AggSpec]) -> Result<Rows> {
    Ok(finalize_partials(aggregate_partial(rows, group_by, aggs)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use proptest::prelude::*;

    fn rows(data: &[&[i64]]) -> Rows {
        data.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::sum(Expr::col(1)),
            AggSpec::count_star(),
            AggSpec::avg(Expr::col(1)),
            AggSpec::min(Expr::col(1)),
            AggSpec::max(Expr::col(1)),
            AggSpec::new(AggFunc::CountDistinct, Expr::col(1)),
        ]
    }

    #[test]
    fn basic_group_by() {
        let input = rows(&[&[1, 10], &[2, 5], &[1, 20], &[2, 5]]);
        let out = aggregate(&input, &[0], &specs()).unwrap();
        assert_eq!(out.len(), 2);
        // Group 1: sum 30, count 2, avg 15, min 10, max 20, distinct 2.
        assert_eq!(
            out[0],
            vec![
                Value::Int(1),
                Value::Int(30),
                Value::Int(2),
                Value::Float(15.0),
                Value::Int(10),
                Value::Int(20),
                Value::Int(2),
            ]
        );
        // Group 2 distinct = 1 (5 appears twice).
        assert_eq!(out[1][6], Value::Int(1));
    }

    #[test]
    fn global_aggregate_no_groups() {
        let input = rows(&[&[0, 1], &[0, 2], &[0, 3]]);
        let out = aggregate(&input, &[], &[AggSpec::sum(Expr::col(1))]).unwrap();
        assert_eq!(out, vec![vec![Value::Int(6)]]);
    }

    #[test]
    fn nulls_ignored_by_aggs() {
        let input = vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(1), Value::Int(4)],
        ];
        let out = aggregate(
            &input,
            &[0],
            &[
                AggSpec::sum(Expr::col(1)),
                AggSpec::new(AggFunc::Count, Expr::col(1)),
                AggSpec::count_star(),
                AggSpec::avg(Expr::col(1)),
            ],
        )
        .unwrap();
        assert_eq!(out[0][1], Value::Int(4)); // sum skips null
        assert_eq!(out[0][2], Value::Int(1)); // count(col) skips null
        assert_eq!(out[0][3], Value::Int(2)); // count(*) doesn't
        assert_eq!(out[0][4], Value::Float(4.0)); // avg over non-null only
    }

    #[test]
    fn empty_input_empty_output() {
        let out = aggregate(&vec![], &[0], &specs()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn avg_merges_correctly_across_partials() {
        // The classic distributed-AVG bug: averaging averages. Partial
        // states carry (sum, n) so merging is exact.
        let a = rows(&[&[0, 10]]); // avg 10 over 1 row
        let b = rows(&[&[0, 1], &[0, 2], &[0, 3]]); // avg 2 over 3 rows
        let specs = vec![AggSpec::avg(Expr::col(1))];
        let pa = aggregate_partial(&a, &[0], &specs).unwrap();
        let pb = aggregate_partial(&b, &[0], &specs).unwrap();
        let merged = finalize_partials(merge_partials(vec![pa, pb], &specs));
        // True avg = 16/4 = 4.0, not (10+2)/2 = 6.0.
        assert_eq!(merged[0][1], Value::Float(4.0));
    }

    #[test]
    fn distinct_merges_as_set_union() {
        let a = rows(&[&[0, 1], &[0, 2]]);
        let b = rows(&[&[0, 2], &[0, 3]]);
        let specs = vec![AggSpec::new(AggFunc::CountDistinct, Expr::col(1))];
        let pa = aggregate_partial(&a, &[0], &specs).unwrap();
        let pb = aggregate_partial(&b, &[0], &specs).unwrap();
        let merged = finalize_partials(merge_partials(vec![pa, pb], &specs));
        assert_eq!(merged[0][1], Value::Int(3));
    }

    /// The pre-fast-path fold: one `update` per row. Reference for the
    /// run-collapse equivalence property.
    fn aggregate_partial_rowwise(
        rows: &Rows,
        group_by: &[usize],
        aggs: &[AggSpec],
    ) -> Result<Partials> {
        let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        for row in rows {
            let key: Vec<Value> = group_by.iter().map(|&c| row[c].clone()).collect();
            let states = groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect());
            for (st, spec) in states.iter_mut().zip(aggs) {
                let v = spec.expr.eval(row)?;
                st.update(&v);
            }
        }
        if group_by.is_empty() && groups.is_empty() {
            groups.insert(
                Vec::new(),
                aggs.iter().map(|a| AggState::new(a.func)).collect(),
            );
        }
        let mut out: Partials = groups
            .into_iter()
            .map(|(key, states)| PartialGroup { key, states })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(out)
    }

    #[test]
    fn run_collapse_never_crosses_int_float_aliasing() {
        // Int(1) == Float(1.0) under Value's comparison equality, but
        // they must NOT form a run: a sum over [Int(1), Float(1.0)] is
        // Float(2.0), while a collapsed Int run would yield Int(2).
        let input = vec![
            vec![Value::Int(0), Value::Int(1)],
            vec![Value::Int(0), Value::Float(1.0)],
        ];
        let specs = vec![AggSpec::sum(Expr::col(1))];
        let fast = aggregate_partial(&input, &[0], &specs).unwrap();
        let slow = aggregate_partial_rowwise(&input, &[0], &specs).unwrap();
        assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
        assert_eq!(fast[0].states[0], AggState::Sum { acc: Value::Float(2.0) });
    }

    proptest! {
        /// Bit-exact equivalence of the run-collapsed fold and the
        /// row-at-a-time fold, over data with long runs, NaNs, nulls,
        /// and Int/Float aliasing — compared via Debug strings so
        /// Float(-0.0) vs Float(0.0) and NaN payloads can't hide
        /// behind comparison equality.
        #[test]
        fn prop_run_collapsed_fold_is_bit_exact(
            data in proptest::collection::vec(
                (0i64..3, prop_oneof![
                    Just(Value::Null),
                    (-4i64..4).prop_map(Value::Int),
                    (-2i32..3).prop_map(|v| Value::Float(v as f64 * 0.5)),
                    Just(Value::Float(f64::NAN)),
                    Just(Value::Int(1)),
                    Just(Value::Float(1.0)),
                ], 0u8..6),
                0..80,
            ),
        ) {
            // `reps` stretches values into runs of identical rows.
            let all: Rows = data
                .iter()
                .flat_map(|(g, v, reps)| {
                    std::iter::repeat_with(|| vec![Value::Int(*g), v.clone()])
                        .take(*reps as usize + 1)
                })
                .collect();
            let specs = specs();
            let fast = aggregate_partial(&all, &[0], &specs).unwrap();
            let slow = aggregate_partial_rowwise(&all, &[0], &specs).unwrap();
            prop_assert_eq!(format!("{:?}", fast), format!("{:?}", slow));
        }

        /// The distributed-equals-centralized property: splitting rows
        /// arbitrarily across "nodes", partial-aggregating, and merging
        /// gives exactly the single-phase answer.
        #[test]
        fn prop_partition_then_merge_equals_single_phase(
            data in proptest::collection::vec((0i64..5, -20i64..20), 0..120),
            split in 1usize..5,
        ) {
            let all: Rows = data.iter().map(|&(g, v)| vec![Value::Int(g), Value::Int(v)]).collect();
            let specs = specs();
            let single = aggregate(&all, &[0], &specs).unwrap();

            let mut parts = Vec::new();
            for chunk_idx in 0..split {
                let chunk: Rows = all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % split == chunk_idx)
                    .map(|(_, r)| r.clone())
                    .collect();
                parts.push(aggregate_partial(&chunk, &[0], &specs).unwrap());
            }
            let merged = finalize_partials(merge_partials(parts, &specs));
            prop_assert_eq!(merged, single);
        }
    }
}
