//! Plan execution: the single-node interpreter and the distributed
//! split.
//!
//! [`execute`] runs a whole plan on one node through a
//! [`TableProvider`] (the storage integration point implemented by
//! `eon-core` for Eon mode and `eon-enterprise` for the baseline).
//!
//! [`auto_distribute`] splits a logical plan at the topmost aggregate:
//! everything below runs on every participating node (against its
//! session-assigned shards), aggregates fold into mergeable partial
//! states, and the coordinator merges partials then applies the
//! remaining operators (HAVING filters, final projections, sort,
//! limit). For plans with no aggregate, nodes return raw rows and the
//! coordinator concatenates.

use eon_types::{EonError, Result};

use crate::agg::{
    aggregate, aggregate_partial, finalize_partials, merge_partials, Partials,
};
use crate::expr::Expr;
use crate::ops::{self, Rows};
use crate::plan::{AggSpec, Plan, ScanSpec, SortKey};

/// Storage integration point: materialize a scan.
pub trait TableProvider {
    fn scan(&self, spec: &ScanSpec) -> Result<Rows>;

    /// Number of columns a scan of `table` (all columns) yields. Needed
    /// to pad LEFT joins whose right side came back empty.
    fn num_columns(&self, table: &str) -> Result<usize>;

    /// Aggregate pushdown: produce this node's partial aggregate states
    /// for `aggs` grouped by `group_by` directly from the scan,
    /// *bit-exactly* equal to `aggregate_partial(scan(spec), ..)`.
    /// `Ok(None)` means the provider can't (or won't, by cost policy)
    /// — the caller falls back to scan-then-fold. Default: declined.
    fn scan_partial_agg(
        &self,
        _spec: &ScanSpec,
        _group_by: &[usize],
        _aggs: &[AggSpec],
    ) -> Result<Option<Partials>> {
        Ok(None)
    }
}

/// Output width of a plan (column count).
pub fn plan_width(plan: &Plan, provider: &dyn TableProvider) -> Result<usize> {
    Ok(match plan {
        Plan::Scan(s) => match &s.columns {
            Some(cols) => cols.len(),
            None => provider.num_columns(&s.table)?,
        },
        Plan::Filter { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
            plan_width(input, provider)?
        }
        Plan::Project { exprs, .. } => exprs.len(),
        Plan::Join {
            left, right, kind, ..
        } => match kind {
            crate::plan::JoinKind::Semi | crate::plan::JoinKind::Anti => {
                plan_width(left, provider)?
            }
            _ => plan_width(left, provider)? + plan_width(right, provider)?,
        },
        Plan::Aggregate {
            group_by, aggs, ..
        } => group_by.len() + aggs.len(),
    })
}

/// Execute a plan on a single node.
pub fn execute(plan: &Plan, provider: &dyn TableProvider) -> Result<Rows> {
    match plan {
        Plan::Scan(spec) => provider.scan(spec),
        Plan::Filter { input, predicate } => {
            let rows = execute(input, provider)?;
            ops::filter(rows, predicate)
        }
        Plan::Project { input, exprs, .. } => {
            let rows = execute(input, provider)?;
            ops::project(rows, exprs)
        }
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            let l = execute(left, provider)?;
            let r = execute(right, provider)?;
            let right_width = plan_width(right, provider)?;
            ops::hash_join(l, r, left_keys, right_keys, *kind, right_width)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rows = execute(input, provider)?;
            aggregate(&rows, group_by, aggs)
        }
        Plan::Sort { input, keys } => Ok(ops::sort(execute(input, provider)?, keys)),
        Plan::Limit { input, n } => Ok(ops::limit(execute(input, provider)?, *n)),
    }
}

/// Coordinator-side steps applied after combining node results.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeStep {
    /// HAVING-style filter over aggregate output.
    Filter(Expr),
    Project { exprs: Vec<Expr>, names: Vec<String> },
    Sort(Vec<SortKey>),
    Limit(usize),
}

/// A plan split into a per-node local phase and a coordinator merge.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedPlan {
    /// Runs on every participating node (aggregate removed).
    pub local: Plan,
    /// Partial aggregation applied on each node over `local`'s output;
    /// `None` when the plan has no top-level aggregate.
    pub partial_agg: Option<(Vec<usize>, Vec<AggSpec>)>,
    /// Applied at the coordinator after merging, bottom-up order.
    pub merge: Vec<MergeStep>,
}

/// What a node ships back to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalResult {
    Rows(Rows),
    Partials(Partials),
}

/// Split a logical plan at its topmost aggregate (if any).
pub fn auto_distribute(plan: &Plan) -> DistributedPlan {
    // Peel coordinator-side operators top-down until we hit an
    // aggregate or a non-peelable node.
    let mut merge_rev: Vec<MergeStep> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            Plan::Limit { input, n } => {
                merge_rev.push(MergeStep::Limit(*n));
                cur = input;
            }
            Plan::Sort { input, keys } => {
                merge_rev.push(MergeStep::Sort(keys.clone()));
                cur = input;
            }
            Plan::Project { input, exprs, names } => {
                merge_rev.push(MergeStep::Project {
                    exprs: exprs.clone(),
                    names: names.clone(),
                });
                cur = input;
            }
            Plan::Filter { input, predicate } => {
                merge_rev.push(MergeStep::Filter(predicate.clone()));
                cur = input;
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                merge_rev.reverse();
                return DistributedPlan {
                    local: (**input).clone(),
                    partial_agg: Some((group_by.clone(), aggs.clone())),
                    merge: merge_rev,
                };
            }
            // Scan/Join boundary: no aggregate in the peeled spine. The
            // peeled steps run fine over concatenated rows *except*
            // Filter/Project, which are cheaper on the nodes — but
            // correctness-first: run everything at the coordinator.
            _ => {
                merge_rev.reverse();
                return DistributedPlan {
                    local: cur.clone(),
                    partial_agg: None,
                    merge: merge_rev,
                };
            }
        }
    }
}

impl DistributedPlan {
    /// Does the local phase touch any shard-local scan? If not, the
    /// coordinator should run it on exactly one node (running it on all
    /// nodes would multiply global rows into the merge).
    pub fn has_local_scan(&self) -> bool {
        let mut any = false;
        self.local.visit_scans(&mut |s| {
            if s.distribute == crate::plan::Distribution::LocalShards {
                any = true;
            }
        });
        any
    }

    /// Run the local phase on one node.
    pub fn execute_local(&self, provider: &dyn TableProvider) -> Result<LocalResult> {
        // Aggregate-over-bare-scan is the shape where the provider may
        // compute the partials below the scan (S3-Select-style); any
        // other local plan folds node-side as before.
        if let (Some((group_by, aggs)), Plan::Scan(spec)) = (&self.partial_agg, &self.local) {
            if let Some(partials) = provider.scan_partial_agg(spec, group_by, aggs)? {
                return Ok(LocalResult::Partials(partials));
            }
        }
        let rows = execute(&self.local, provider)?;
        match &self.partial_agg {
            Some((group_by, aggs)) => Ok(LocalResult::Partials(aggregate_partial(
                &rows, group_by, aggs,
            )?)),
            None => Ok(LocalResult::Rows(rows)),
        }
    }

    /// Coordinator: combine node results and apply the merge steps.
    pub fn finish(&self, results: Vec<LocalResult>) -> Result<Rows> {
        let mut rows: Rows = match &self.partial_agg {
            Some((_, aggs)) => {
                let mut parts = Vec::with_capacity(results.len());
                for r in results {
                    match r {
                        LocalResult::Partials(p) => parts.push(p),
                        LocalResult::Rows(_) => {
                            return Err(EonError::Internal(
                                "expected partial aggregates from node".into(),
                            ))
                        }
                    }
                }
                finalize_partials(merge_partials(parts, aggs))
            }
            None => {
                let mut all = Vec::new();
                for r in results {
                    match r {
                        LocalResult::Rows(mut rs) => all.append(&mut rs),
                        LocalResult::Partials(_) => {
                            return Err(EonError::Internal(
                                "unexpected partial aggregates from node".into(),
                            ))
                        }
                    }
                }
                all
            }
        };
        for step in &self.merge {
            rows = match step {
                MergeStep::Filter(e) => ops::filter(rows, e)?,
                MergeStep::Project { exprs, .. } => ops::project(rows, exprs)?,
                MergeStep::Sort(keys) => ops::sort(rows, keys),
                MergeStep::Limit(n) => ops::limit(rows, *n),
            };
        }
        Ok(rows)
    }
}

#[cfg(test)]
pub mod testing {
    //! A trivial in-memory provider used by this crate's tests and by
    //! downstream crates' unit tests.

    use std::collections::HashMap;

    use super::*;
    use eon_types::Value;

    /// Tables as materialized rows; `LocalShards` scans return the
    /// node's slice (row index mod node count), `Global` scans return
    /// everything — mimicking segmentation without real storage.
    pub struct MemProvider {
        pub tables: HashMap<String, Rows>,
        pub node: usize,
        pub nodes_total: usize,
    }

    impl MemProvider {
        pub fn single(tables: HashMap<String, Rows>) -> Self {
            MemProvider {
                tables,
                node: 0,
                nodes_total: 1,
            }
        }
    }

    impl TableProvider for MemProvider {
        fn scan(&self, spec: &ScanSpec) -> Result<Rows> {
            let rows = self
                .tables
                .get(&spec.table)
                .ok_or_else(|| EonError::UnknownTable(spec.table.clone()))?;
            let mut out = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                if spec.distribute == crate::plan::Distribution::LocalShards
                    && i % self.nodes_total != self.node
                {
                    continue;
                }
                if !spec.predicate.eval_row(row) {
                    continue;
                }
                let projected: Vec<Value> = match &spec.columns {
                    Some(cols) => cols.iter().map(|&c| row[c].clone()).collect(),
                    None => row.clone(),
                };
                out.push(projected);
            }
            Ok(out)
        }

        fn num_columns(&self, table: &str) -> Result<usize> {
            self.tables
                .get(table)
                .and_then(|rows| rows.first().map(|r| r.len()))
                .ok_or_else(|| EonError::UnknownTable(table.to_owned()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::MemProvider;
    use super::*;
    use crate::expr::CmpOp;
    use crate::plan::{AggFunc, JoinKind};
    use eon_columnar::Predicate;
    use eon_types::Value;
    use std::collections::HashMap;

    fn irows(data: &[&[i64]]) -> Rows {
        data.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }

    fn provider() -> MemProvider {
        let mut tables = HashMap::new();
        // sales(region, amount)
        tables.insert(
            "sales".to_owned(),
            irows(&[&[1, 10], &[1, 20], &[2, 5], &[2, 15], &[3, 7]]),
        );
        // regions(id, tier)
        tables.insert("regions".to_owned(), irows(&[&[1, 100], &[2, 200], &[3, 100]]));
        MemProvider::single(tables)
    }

    fn sum_by_region() -> Plan {
        Plan::scan(ScanSpec::new("sales"))
            .aggregate(vec![0], vec![AggSpec::sum(Expr::col(1))])
            .sort(vec![SortKey::asc(0)])
    }

    #[test]
    fn end_to_end_aggregate() {
        let out = execute(&sum_by_region(), &provider()).unwrap();
        assert_eq!(out, irows(&[&[1, 30], &[2, 20], &[3, 7]]));
    }

    #[test]
    fn scan_pushdown_predicate_and_columns() {
        let p = Plan::scan(
            ScanSpec::new("sales")
                .predicate(Predicate::cmp(1, eon_columnar::pruning::CmpOp::Gt, 9i64))
                .columns(vec![1]),
        );
        let out = execute(&p, &provider()).unwrap();
        assert_eq!(out, irows(&[&[10], &[20], &[15]]));
    }

    #[test]
    fn join_then_aggregate() {
        // sum(amount) per region tier
        let p = Plan::scan(ScanSpec::new("sales"))
            .join(Plan::scan(ScanSpec::new("regions").global()), vec![0], vec![0])
            .aggregate(vec![3], vec![AggSpec::sum(Expr::col(1))])
            .sort(vec![SortKey::asc(0)]);
        let out = execute(&p, &provider()).unwrap();
        // tier 100: regions 1,3 → 30 + 7 = 37; tier 200: region 2 → 20.
        assert_eq!(out, irows(&[&[100, 37], &[200, 20]]));
    }

    #[test]
    fn semi_join_width() {
        let p = Plan::scan(ScanSpec::new("sales")).join_kind(
            Plan::scan(ScanSpec::new("regions").global()),
            vec![0],
            vec![0],
            JoinKind::Semi,
        );
        assert_eq!(plan_width(&p, &provider()).unwrap(), 2);
    }

    #[test]
    fn distributed_matches_single_node() {
        // 3 "nodes" each see a slice of sales; distributed execution
        // must equal the single-node answer.
        let plan = sum_by_region();
        let single = execute(&plan, &provider()).unwrap();

        let dp = auto_distribute(&plan);
        assert!(dp.has_local_scan());
        let mut results = Vec::new();
        for node in 0..3 {
            let mut p = provider();
            p.node = node;
            p.nodes_total = 3;
            results.push(dp.execute_local(&p).unwrap());
        }
        assert_eq!(dp.finish(results).unwrap(), single);
    }

    #[test]
    fn distributed_join_with_broadcast_dimension() {
        let plan = Plan::scan(ScanSpec::new("sales"))
            .join(Plan::scan(ScanSpec::new("regions").global()), vec![0], vec![0])
            .aggregate(vec![3], vec![AggSpec::sum(Expr::col(1)), AggSpec::count_star()])
            .sort(vec![SortKey::asc(0)]);
        let single = execute(&plan, &provider()).unwrap();
        let dp = auto_distribute(&plan);
        let results: Vec<_> = (0..2)
            .map(|node| {
                let mut p = provider();
                p.node = node;
                p.nodes_total = 2;
                dp.execute_local(&p).unwrap()
            })
            .collect();
        assert_eq!(dp.finish(results).unwrap(), single);
    }

    #[test]
    fn distributed_having_and_limit() {
        // HAVING sum > 10 ORDER BY sum DESC LIMIT 1
        let plan = Plan::scan(ScanSpec::new("sales"))
            .aggregate(vec![0], vec![AggSpec::sum(Expr::col(1))])
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(10i64)))
            .sort(vec![SortKey::desc(1)])
            .limit(1);
        let single = execute(&plan, &provider()).unwrap();
        assert_eq!(single, irows(&[&[1, 30]]));

        let dp = auto_distribute(&plan);
        assert_eq!(dp.merge.len(), 3); // filter, sort, limit
        let results: Vec<_> = (0..3)
            .map(|node| {
                let mut p = provider();
                p.node = node;
                p.nodes_total = 3;
                dp.execute_local(&p).unwrap()
            })
            .collect();
        assert_eq!(dp.finish(results).unwrap(), single);
    }

    #[test]
    fn plan_without_aggregate_concatenates() {
        let plan = Plan::scan(ScanSpec::new("sales")).sort(vec![SortKey::asc(1)]).limit(3);
        let single = execute(&plan, &provider()).unwrap();
        let dp = auto_distribute(&plan);
        assert!(dp.partial_agg.is_none());
        let results: Vec<_> = (0..2)
            .map(|node| {
                let mut p = provider();
                p.node = node;
                p.nodes_total = 2;
                dp.execute_local(&p).unwrap()
            })
            .collect();
        assert_eq!(dp.finish(results).unwrap(), single);
    }

    #[test]
    fn global_only_plan_detected() {
        let plan = Plan::scan(ScanSpec::new("regions").global())
            .aggregate(vec![], vec![AggSpec::count_star()]);
        let dp = auto_distribute(&plan);
        assert!(!dp.has_local_scan());
        // Executed on ONE node, the answer is correct.
        let out = dp
            .finish(vec![dp.execute_local(&provider()).unwrap()])
            .unwrap();
        assert_eq!(out, irows(&[&[3]]));
    }

    #[test]
    fn count_distinct_distributes() {
        let plan = Plan::scan(ScanSpec::new("sales")).aggregate(
            vec![],
            vec![AggSpec::new(AggFunc::CountDistinct, Expr::col(0))],
        );
        let single = execute(&plan, &provider()).unwrap();
        assert_eq!(single, irows(&[&[3]]));
        let dp = auto_distribute(&plan);
        let results: Vec<_> = (0..3)
            .map(|node| {
                let mut p = provider();
                p.node = node;
                p.nodes_total = 3;
                dp.execute_local(&p).unwrap()
            })
            .collect();
        assert_eq!(dp.finish(results).unwrap(), single);
    }
}
