//! Scalar expressions evaluated against rows.
//!
//! SQL semantics where they matter: NULL propagates through arithmetic
//! and comparisons, `AND`/`OR` short-circuit with NULL treated as
//! false in filter position, division by zero yields NULL.

use serde::{Deserialize, Serialize};

use eon_types::{EonError, Result, Value};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison operators (re-exported shape matches the pruning layer).
pub use eon_columnar::pruning::CmpOp;

/// A scalar expression over the columns of its input row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference by input-row index.
    Col(usize),
    Lit(Value),
    Arith {
        op: ArithOp,
        l: Box<Expr>,
        r: Box<Expr>,
    },
    Cmp {
        op: CmpOp,
        l: Box<Expr>,
        r: Box<Expr>,
    },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    /// `CASE WHEN c1 THEN v1 … ELSE e END`.
    Case {
        whens: Vec<(Expr, Expr)>,
        otherwise: Box<Expr>,
    },
    /// SQL LIKE with `%` wildcards only (enough for TPC-H).
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// Set membership against literals (`x IN (…)`).
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `EXTRACT(YEAR FROM date_col)` — the one date function TPC-H
    /// needs.
    ExtractYear(Box<Expr>),
}

// The arithmetic constructors intentionally mirror SQL operator names;
// they are static builders, not operator-trait methods.
#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn add(l: Expr, r: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Add,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    pub fn sub(l: Expr, r: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Sub,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    pub fn mul(l: Expr, r: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Mul,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    pub fn div(l: Expr, r: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Div,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp {
            op,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    pub fn eq(l: Expr, r: Expr) -> Expr {
        Self::cmp(CmpOp::Eq, l, r)
    }

    pub fn like(e: Expr, pattern: &str) -> Expr {
        Expr::Like {
            expr: Box::new(e),
            pattern: pattern.to_owned(),
            negated: false,
        }
    }

    /// Evaluate against `row`. Errors only on type mismatches a planner
    /// should have rejected (e.g. `'a' + 1`).
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| EonError::Query(format!("column {i} out of range"))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Arith { op, l, r } => {
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                eval_arith(*op, &lv, &rv)
            }
            Expr::Cmp { op, l, r } => {
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                let ord = lv.cmp(&rv);
                let b = match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                };
                Ok(Value::Bool(b))
            }
            Expr::And(es) => {
                let mut saw_null = false;
                for e in es {
                    match e.eval(row)? {
                        Value::Bool(false) => return Ok(Value::Bool(false)),
                        Value::Null => saw_null = true,
                        Value::Bool(true) => {}
                        v => {
                            return Err(EonError::Query(format!("AND over non-boolean {v}")));
                        }
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Bool(true) })
            }
            Expr::Or(es) => {
                let mut saw_null = false;
                for e in es {
                    match e.eval(row)? {
                        Value::Bool(true) => return Ok(Value::Bool(true)),
                        Value::Null => saw_null = true,
                        Value::Bool(false) => {}
                        v => {
                            return Err(EonError::Query(format!("OR over non-boolean {v}")));
                        }
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Bool(false) })
            }
            Expr::Not(e) => match e.eval(row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                v => Err(EonError::Query(format!("NOT over non-boolean {v}"))),
            },
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(row)?.is_null())),
            Expr::Case { whens, otherwise } => {
                for (cond, out) in whens {
                    if matches!(cond.eval(row)?, Value::Bool(true)) {
                        return out.eval(row);
                    }
                }
                otherwise.eval(row)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern) != *negated)),
                    other => Err(EonError::Query(format!("LIKE over non-string {other}"))),
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(list.contains(&v) != *negated))
            }
            Expr::ExtractYear(e) => match e.eval(row)? {
                Value::Date(d) => {
                    let (y, _, _) = eon_types::value::days_to_ymd(d);
                    Ok(Value::Int(y as i64))
                }
                Value::Null => Ok(Value::Null),
                other => Err(EonError::Query(format!("EXTRACT over non-date {other}"))),
            },
        }
    }

    /// Evaluate in filter position: NULL counts as false.
    pub fn eval_filter(&self, row: &[Value]) -> Result<bool> {
        Ok(matches!(self.eval(row)?, Value::Bool(true)))
    }
}

fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Int op Int stays Int (except division, which goes Float like
    // most analytics engines' default for averages of money).
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
        });
    }
    let (a, b) = match (l.as_float(), r.as_float()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(EonError::Query(format!(
                "arithmetic over non-numeric values {l} and {r}"
            )))
        }
    };
    Ok(match op {
        ArithOp::Add => Value::Float(a + b),
        ArithOp::Sub => Value::Float(a - b),
        ArithOp::Mul => Value::Float(a * b),
        ArithOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
    })
}

/// `%`-wildcard LIKE matching (no `_`, which TPC-H doesn't use).
/// Greedy segment matching: split the pattern on `%` and find each
/// literal segment in order.
fn like_match(s: &str, pattern: &str) -> bool {
    let segments: Vec<&str> = pattern.split('%').collect();
    if segments.len() == 1 {
        return s == pattern;
    }
    let mut pos = 0usize;
    for (i, seg) in segments.iter().enumerate() {
        if seg.is_empty() {
            continue;
        }
        if i == 0 {
            if !s.starts_with(seg) {
                return false;
            }
            pos = seg.len();
        } else if i == segments.len() - 1 {
            return s.len() >= pos + seg.len() && s.ends_with(seg);
        } else {
            match s[pos..].find(seg) {
                Some(off) => pos = pos + off + seg.len(),
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_types::value::date;

    fn irow(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn arithmetic_types() {
        let row = irow(&[6, 3]);
        assert_eq!(
            Expr::add(Expr::col(0), Expr::col(1)).eval(&row).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            Expr::div(Expr::col(0), Expr::col(1)).eval(&row).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            Expr::mul(Expr::lit(1.5), Expr::col(1)).eval(&row).unwrap(),
            Value::Float(4.5)
        );
    }

    #[test]
    fn null_propagation() {
        let row = vec![Value::Null, Value::Int(1)];
        assert!(Expr::add(Expr::col(0), Expr::col(1)).eval(&row).unwrap().is_null());
        assert!(Expr::eq(Expr::col(0), Expr::col(1)).eval(&row).unwrap().is_null());
        assert!(!Expr::eq(Expr::col(0), Expr::col(1)).eval_filter(&row).unwrap());
        assert_eq!(
            Expr::IsNull(Box::new(Expr::col(0))).eval(&row).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        let row = irow(&[5, 0]);
        assert!(Expr::div(Expr::col(0), Expr::col(1)).eval(&row).unwrap().is_null());
        let rowf = vec![Value::Float(5.0), Value::Float(0.0)];
        assert!(Expr::div(Expr::col(0), Expr::col(1)).eval(&rowf).unwrap().is_null());
    }

    #[test]
    fn three_valued_and_or() {
        let row = vec![Value::Null];
        let null_cond = Expr::eq(Expr::col(0), Expr::lit(1i64));
        // false AND NULL = false; true OR NULL = true
        assert_eq!(
            Expr::And(vec![Expr::lit(false), null_cond.clone()])
                .eval(&row)
                .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::Or(vec![Expr::lit(true), null_cond.clone()])
                .eval(&row)
                .unwrap(),
            Value::Bool(true)
        );
        // true AND NULL = NULL
        assert!(Expr::And(vec![Expr::lit(true), null_cond])
            .eval(&row)
            .unwrap()
            .is_null());
    }

    #[test]
    fn case_expression() {
        let e = Expr::Case {
            whens: vec![
                (Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(10i64)), Expr::lit("small")),
                (Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(100i64)), Expr::lit("medium")),
            ],
            otherwise: Box::new(Expr::lit("large")),
        };
        assert_eq!(e.eval(&irow(&[5])).unwrap(), Value::Str("small".into()));
        assert_eq!(e.eval(&irow(&[50])).unwrap(), Value::Str("medium".into()));
        assert_eq!(e.eval(&irow(&[500])).unwrap(), Value::Str("large".into()));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("PROMO BRUSHED STEEL", "PROMO%"));
        assert!(like_match("forest green", "%green"));
        assert!(like_match("MEDIUM POLISHED BRASS", "%POLISHED%"));
        assert!(!like_match("ECONOMY BRASS", "%POLISHED%"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(like_match("special requests", "%special%requests%"));
        assert!(!like_match("requests special", "%special%requests%"));
        assert!(like_match("", "%"));
    }

    #[test]
    fn like_negated_and_null() {
        let e = Expr::Like {
            expr: Box::new(Expr::col(0)),
            pattern: "x%".into(),
            negated: true,
        };
        assert_eq!(
            e.eval(&[Value::Str("yes".into())]).unwrap(),
            Value::Bool(true)
        );
        assert!(e.eval(&[Value::Null]).unwrap().is_null());
    }

    #[test]
    fn in_list() {
        let e = Expr::InList {
            expr: Box::new(Expr::col(0)),
            list: vec![Value::Int(1), Value::Int(3)],
            negated: false,
        };
        assert_eq!(e.eval(&irow(&[3])).unwrap(), Value::Bool(true));
        assert_eq!(e.eval(&irow(&[2])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn extract_year() {
        let e = Expr::ExtractYear(Box::new(Expr::col(0)));
        assert_eq!(e.eval(&[date(1995, 6, 1)]).unwrap(), Value::Int(1995));
        assert!(e.eval(&[Value::Null]).unwrap().is_null());
    }

    #[test]
    fn type_errors_surface() {
        let row = vec![Value::Str("a".into()), Value::Int(1)];
        assert!(Expr::add(Expr::col(0), Expr::col(1)).eval(&row).is_err());
        assert!(Expr::Not(Box::new(Expr::col(1))).eval(&row).is_err());
    }
}
