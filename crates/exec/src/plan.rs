//! The logical plan language.
//!
//! Plans are built by hand (the workload crate plays the role of
//! Vertica's parser + optimizer output) and are deliberately explicit
//! about the two things the paper's execution model cares about:
//! which predicate is *pushed down* into the scan (for block pruning,
//! §2.1) and how each scan *distributes* over the cluster (shard-local
//! vs global, §4).

use serde::{Deserialize, Serialize};

use eon_columnar::Predicate;

use crate::expr::Expr;

/// How a scan spreads over participating nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Distribution {
    /// Each participating node scans only the containers of the shards
    /// the session assigned to it — union over nodes sees each row
    /// exactly once. The default for fact tables.
    #[default]
    LocalShards,
    /// Every node scans the whole table (dimension/broadcast side of a
    /// non-co-segmented join; replicated projections read their single
    /// copy).
    Global,
}

/// A table scan with pushdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanSpec {
    pub table: String,
    /// Subset of table columns to materialize (`None` = all). Output
    /// column order follows this list.
    pub columns: Option<Vec<usize>>,
    /// Pushed-down predicate in *table column indices*; used for block
    /// pruning and early filtering. Applied before column projection.
    pub predicate: Predicate,
    pub distribute: Distribution,
    /// Pin the scan to a specific projection by name. Required to read
    /// a Live Aggregate Projection (its rows are pre-aggregated, so the
    /// planner never picks one implicitly); `columns` is ignored for a
    /// pinned LAP — the scan yields the LAP's own column layout.
    #[serde(default)]
    pub projection: Option<String>,
}

impl ScanSpec {
    pub fn new(table: impl Into<String>) -> Self {
        ScanSpec {
            table: table.into(),
            columns: None,
            predicate: Predicate::True,
            distribute: Distribution::LocalShards,
            projection: None,
        }
    }

    /// Pin to a named projection (Live Aggregate Projections must be
    /// addressed this way).
    pub fn projection(mut self, name: impl Into<String>) -> Self {
        self.projection = Some(name.into());
        self
    }

    pub fn columns(mut self, cols: Vec<usize>) -> Self {
        self.columns = Some(cols);
        self
    }

    pub fn predicate(mut self, p: Predicate) -> Self {
        self.predicate = p;
        self
    }

    pub fn global(mut self) -> Self {
        self.distribute = Distribution::Global;
        self
    }
}

/// Join kinds used by the workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    Inner,
    /// Left outer; unmatched left rows pad the right side with NULLs.
    Left,
    /// Left semi join: left rows with at least one match (EXISTS).
    Semi,
    /// Left anti join: left rows with no match (NOT EXISTS).
    Anti,
}

/// Aggregate functions with mergeable partial states (see `agg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    Sum,
    Count,
    /// COUNT(*) — counts rows, ignoring the expression.
    CountStar,
    Avg,
    Min,
    Max,
    /// COUNT(DISTINCT expr).
    CountDistinct,
}

/// One aggregate column: `func(expr)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    pub func: AggFunc,
    pub expr: Expr,
}

impl AggSpec {
    pub fn new(func: AggFunc, expr: Expr) -> Self {
        AggSpec { func, expr }
    }

    pub fn sum(expr: Expr) -> Self {
        Self::new(AggFunc::Sum, expr)
    }

    pub fn count_star() -> Self {
        Self::new(AggFunc::CountStar, Expr::lit(1i64))
    }

    pub fn avg(expr: Expr) -> Self {
        Self::new(AggFunc::Avg, expr)
    }

    pub fn min(expr: Expr) -> Self {
        Self::new(AggFunc::Min, expr)
    }

    pub fn max(expr: Expr) -> Self {
        Self::new(AggFunc::Max, expr)
    }
}

/// A sort key over output column indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortKey {
    pub col: usize,
    pub desc: bool,
}

impl SortKey {
    pub fn asc(col: usize) -> Self {
        SortKey { col, desc: false }
    }

    pub fn desc(col: usize) -> Self {
        SortKey { col, desc: true }
    }
}

/// The logical plan tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Plan {
    Scan(ScanSpec),
    Filter {
        input: Box<Plan>,
        predicate: Expr,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<Expr>,
        names: Vec<String>,
    },
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        /// Equi-join key columns: `left_keys[i] == right_keys[i]`.
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
    },
    /// Hash aggregation. Output columns: group-by columns (in order)
    /// followed by one column per aggregate.
    Aggregate {
        input: Box<Plan>,
        /// Group-by keys as input column indices.
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<SortKey>,
    },
    Limit {
        input: Box<Plan>,
        n: usize,
    },
}

impl Plan {
    pub fn scan(spec: ScanSpec) -> Plan {
        Plan::Scan(spec)
    }

    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    pub fn project(self, exprs: Vec<Expr>, names: Vec<&str>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs,
            names: names.into_iter().map(|s| s.to_owned()).collect(),
        }
    }

    pub fn join(self, right: Plan, left_keys: Vec<usize>, right_keys: Vec<usize>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
            kind: JoinKind::Inner,
        }
    }

    pub fn join_kind(
        self,
        right: Plan,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
    ) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
            kind,
        }
    }

    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggSpec>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    pub fn sort(self, keys: Vec<SortKey>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// All tables the plan scans (for admission control and metrics).
    pub fn tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_scans(&mut |s| out.push(s.table.as_str()));
        out
    }

    /// Pretty tree rendering — the body of the SQL layer's `EXPLAIN`
    /// and the plan half of `EXPLAIN ANALYZE` profiles.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_into(&mut out, 0);
        out
    }

    fn describe_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            Plan::Scan(s) => {
                out.push_str(&format!("Scan {}", s.table));
                if let Some(p) = &s.projection {
                    out.push_str(&format!(" (projection {p})"));
                }
                if let Some(cols) = &s.columns {
                    out.push_str(&format!(" cols={cols:?}"));
                }
                if s.predicate != Predicate::True {
                    out.push_str(" [pushdown]");
                }
                if s.distribute == Distribution::Global {
                    out.push_str(" [global]");
                }
                out.push('\n');
            }
            Plan::Filter { input, .. } => {
                out.push_str("Filter\n");
                input.describe_into(out, depth + 1);
            }
            Plan::Project { input, names, .. } => {
                out.push_str(&format!("Project {names:?}\n"));
                input.describe_into(out, depth + 1);
            }
            Plan::Join {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => {
                out.push_str(&format!("Join {kind:?} on {left_keys:?}={right_keys:?}\n"));
                left.describe_into(out, depth + 1);
                right.describe_into(out, depth + 1);
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let funcs: Vec<_> = aggs.iter().map(|a| a.func).collect();
                out.push_str(&format!("Aggregate group_by={group_by:?} {funcs:?}\n"));
                input.describe_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                let cols: Vec<_> = keys
                    .iter()
                    .map(|k| if k.desc { format!("{}v", k.col) } else { format!("{}^", k.col) })
                    .collect();
                out.push_str(&format!("Sort {cols:?}\n"));
                input.describe_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("Limit {n}\n"));
                input.describe_into(out, depth + 1);
            }
        }
    }

    /// Visit every scan in the tree.
    pub fn visit_scans<'a>(&'a self, f: &mut impl FnMut(&'a ScanSpec)) {
        match self {
            Plan::Scan(s) => f(s),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.visit_scans(f),
            Plan::Join { left, right, .. } => {
                left.visit_scans(f);
                right.visit_scans(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = Plan::scan(ScanSpec::new("lineitem"))
            .filter(Expr::eq(Expr::col(0), Expr::lit(1i64)))
            .aggregate(vec![1], vec![AggSpec::count_star()])
            .sort(vec![SortKey::desc(1)])
            .limit(10);
        assert_eq!(p.tables(), vec!["lineitem"]);
        // Shape sanity.
        let Plan::Limit { input, n } = &p else { panic!() };
        assert_eq!(*n, 10);
        assert!(matches!(**input, Plan::Sort { .. }));
    }

    #[test]
    fn join_collects_both_scans() {
        let p = Plan::scan(ScanSpec::new("orders"))
            .join(Plan::scan(ScanSpec::new("customer").global()), vec![1], vec![0]);
        assert_eq!(p.tables(), vec!["orders", "customer"]);
    }

    #[test]
    fn scan_spec_builder() {
        let s = ScanSpec::new("t").columns(vec![0, 2]).global();
        assert_eq!(s.columns, Some(vec![0, 2]));
        assert_eq!(s.distribute, Distribution::Global);
    }
}
