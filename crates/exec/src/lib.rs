//! Query execution (paper §4).
//!
//! Eon mode reuses Vertica's optimizer and execution engine; this crate
//! is our from-scratch equivalent:
//!
//! * [`expr`] — scalar expressions (arithmetic, comparisons, boolean
//!   logic, CASE, LIKE, date extraction);
//! * [`plan`] — the logical plan language: scans with pushed-down
//!   predicates and a distribution mode, filter/project/join/
//!   aggregate/sort/limit;
//! * [`ops`] — the row-at-a-time operator implementations;
//! * [`agg`] — aggregation with *mergeable partial states*, the basis of
//!   distributed group-by;
//! * [`execute`] — the single-node executor over a [`TableProvider`],
//!   plus [`execute::auto_distribute`], which splits a logical plan
//!   into a per-node local phase and a coordinator merge phase;
//! * [`crunch`] — crunch scaling (§4.4): hash-filter and container-split
//!   predicates that let several nodes share one shard's scan.
//!
//! The coordinator/participant wiring (which nodes run the local phase,
//! §4.1's max-flow selection) lives in `eon-core`; this crate is
//! cluster-agnostic.

pub mod agg;
pub mod crunch;
pub mod execute;
pub mod expr;
pub mod ops;
pub mod plan;

pub use execute::{auto_distribute, execute, DistributedPlan, MergeStep, TableProvider};
pub use expr::Expr;
pub use plan::{AggFunc, AggSpec, Distribution, JoinKind, Plan, ScanSpec, SortKey};
