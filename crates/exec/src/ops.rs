//! Row-at-a-time operator implementations over materialized batches.
//!
//! `Vec<Vec<Value>>` batches keep the executor simple and testable; the
//! columnar smarts (encodings, pruning) live below the scan, where the
//! paper puts them.

use std::collections::HashMap;

use eon_types::{Result, Value};

use crate::expr::Expr;
use crate::plan::{JoinKind, SortKey};

pub type Rows = Vec<Vec<Value>>;

/// Keep rows where `predicate` evaluates to true.
pub fn filter(rows: Rows, predicate: &Expr) -> Result<Rows> {
    let mut out = Vec::with_capacity(rows.len() / 2);
    for row in rows {
        if predicate.eval_filter(&row)? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Evaluate `exprs` against each row.
pub fn project(rows: Rows, exprs: &[Expr]) -> Result<Rows> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut new_row = Vec::with_capacity(exprs.len());
        for e in exprs {
            new_row.push(e.eval(&row)?);
        }
        out.push(new_row);
    }
    Ok(out)
}

/// Key extractor for hash operations. Rows containing NULL in any key
/// column get `None` — SQL equi-joins never match on NULL.
fn join_key(row: &[Value], cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = &row[c];
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

/// Emit output rows for one probe row given its build-side matches.
fn emit_join_rows(
    lrow: &[Value],
    matches: Option<&Vec<&Vec<Value>>>,
    kind: JoinKind,
    right_width: usize,
    out: &mut Rows,
) {
    match kind {
        JoinKind::Inner => {
            if let Some(ms) = matches {
                for r in ms {
                    let mut row = lrow.to_vec();
                    row.extend(r.iter().cloned());
                    out.push(row);
                }
            }
        }
        JoinKind::Left => match matches {
            Some(ms) => {
                for r in ms {
                    let mut row = lrow.to_vec();
                    row.extend(r.iter().cloned());
                    out.push(row);
                }
            }
            None => {
                let mut row = lrow.to_vec();
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(row);
            }
        },
        JoinKind::Semi => {
            if matches.is_some() {
                out.push(lrow.to_vec());
            }
        }
        JoinKind::Anti => {
            if matches.is_none() {
                out.push(lrow.to_vec());
            }
        }
    }
}

/// Hash join. Builds on the right side, probes with the left.
/// Single-column keys — the overwhelmingly common case — hash the
/// value by reference; only multi-column keys materialize a composite
/// `Vec<Value>` key per row.
pub fn hash_join(
    left: Rows,
    right: Rows,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
    right_width: usize,
) -> Result<Rows> {
    let mut out = Vec::new();
    if let ([lk], [rk]) = (left_keys, right_keys) {
        let mut table: HashMap<&Value, Vec<&Vec<Value>>> = HashMap::new();
        for row in &right {
            let v = &row[*rk];
            if !v.is_null() {
                table.entry(v).or_default().push(row);
            }
        }
        for lrow in &left {
            let v = &lrow[*lk];
            let matches = if v.is_null() { None } else { table.get(v) };
            emit_join_rows(lrow, matches, kind, right_width, &mut out);
        }
        return Ok(out);
    }
    let mut table: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
    for row in &right {
        if let Some(k) = join_key(row, right_keys) {
            table.entry(k).or_default().push(row);
        }
    }
    for lrow in &left {
        let matches = join_key(lrow, left_keys).and_then(|k| table.get(&k));
        emit_join_rows(lrow, matches, kind, right_width, &mut out);
    }
    Ok(out)
}

/// Stable multi-key sort.
pub fn sort(mut rows: Rows, keys: &[SortKey]) -> Rows {
    rows.sort_by(|a, b| {
        for k in keys {
            let ord = a[k.col].cmp(&b[k.col]);
            let ord = if k.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

/// First `n` rows.
pub fn limit(mut rows: Rows, n: usize) -> Rows {
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn rows(data: &[&[i64]]) -> Rows {
        data.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }

    #[test]
    fn filter_keeps_matches() {
        let r = filter(
            rows(&[&[1], &[5], &[10]]),
            &Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(5i64)),
        )
        .unwrap();
        assert_eq!(r, rows(&[&[5], &[10]]));
    }

    #[test]
    fn project_computes() {
        let r = project(
            rows(&[&[2, 3]]),
            &[Expr::mul(Expr::col(0), Expr::col(1)), Expr::col(0)],
        )
        .unwrap();
        assert_eq!(r, rows(&[&[6, 2]]));
    }

    #[test]
    fn inner_join_matches() {
        let left = rows(&[&[1, 10], &[2, 20], &[3, 30]]);
        let right = rows(&[&[1, 100], &[2, 200], &[2, 201]]);
        let out = hash_join(left, right, &[0], &[0], JoinKind::Inner, 2).unwrap();
        assert_eq!(out.len(), 3); // key 1 once, key 2 twice
        assert!(out.contains(&vec![
            Value::Int(2),
            Value::Int(20),
            Value::Int(2),
            Value::Int(201)
        ]));
    }

    #[test]
    fn left_join_pads_nulls() {
        let left = rows(&[&[1], &[9]]);
        let right = rows(&[&[1, 100]]);
        let out = hash_join(left, right, &[0], &[0], JoinKind::Left, 2).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], vec![Value::Int(9), Value::Null, Value::Null]);
    }

    #[test]
    fn semi_and_anti() {
        let left = rows(&[&[1], &[2], &[3]]);
        let right = rows(&[&[2, 0], &[2, 1]]);
        let semi = hash_join(left.clone(), right.clone(), &[0], &[0], JoinKind::Semi, 2).unwrap();
        assert_eq!(semi, rows(&[&[2]])); // no duplication despite 2 matches
        let anti = hash_join(left, right, &[0], &[0], JoinKind::Anti, 2).unwrap();
        assert_eq!(anti, rows(&[&[1], &[3]]));
    }

    #[test]
    fn null_keys_never_match() {
        let left = vec![vec![Value::Null, Value::Int(1)]];
        let right = vec![vec![Value::Null, Value::Int(2)]];
        let out = hash_join(left.clone(), right.clone(), &[0], &[0], JoinKind::Inner, 2).unwrap();
        assert!(out.is_empty());
        // In a LEFT join the null-keyed left row survives with padding.
        let out = hash_join(left, right, &[0], &[0], JoinKind::Left, 2).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0][2].is_null());
    }

    #[test]
    fn multi_key_join() {
        let left = rows(&[&[1, 2, 77]]);
        let right = rows(&[&[1, 2, 88], &[1, 3, 99]]);
        let out = hash_join(left, right, &[0, 1], &[0, 1], JoinKind::Inner, 3).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][5], Value::Int(88));
    }

    #[test]
    fn sort_multi_key_with_desc() {
        let out = sort(
            rows(&[&[1, 5], &[2, 3], &[1, 9]]),
            &[SortKey::asc(0), SortKey::desc(1)],
        );
        assert_eq!(out, rows(&[&[1, 9], &[1, 5], &[2, 3]]));
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(limit(rows(&[&[1], &[2], &[3]]), 2).len(), 2);
        assert_eq!(limit(rows(&[&[1]]), 5).len(), 1);
    }
}
