//! Mergeout: ROS container compaction.
//!
//! Containers are assigned to exponentially sized *strata* by row
//! count; when a stratum accumulates `fanin` containers they merge into
//! one container in a higher stratum. Each tuple therefore participates
//! in at most `log_fanin(total/base)` merges — the paper's "merge each
//! tuple a small fixed number of times". Deleted rows are purged during
//! the merge (§2.3), and containers with heavy delete load are promoted
//! into eligibility early.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use std::sync::Arc;

use eon_obs::{Counter, Determinism, Histogram, Registry};
use eon_types::{NodeId, Oid, ShardId, Value};

/// Registry handles for the tuple mover (DESIGN.md "Observability").
/// The maintenance loop in `eon-core` registers one of these against
/// the database registry and records each executed merge job.
#[derive(Clone)]
pub struct MergeoutMetrics {
    /// `tm_mergeout_jobs_total` — executed merge jobs.
    pub jobs: Arc<Counter>,
    /// `tm_mergeout_rows_rewritten_total` — rows written to merged
    /// output containers.
    pub rows_rewritten: Arc<Counter>,
    /// `tm_mergeout_bytes_rewritten_total` — encoded bytes of merged
    /// output containers.
    pub bytes_rewritten: Arc<Counter>,
    /// `tm_mergeout_inputs_total` — input containers consumed.
    pub inputs_merged: Arc<Counter>,
    /// `tm_mergeout_job_stratum` — stratum of each executed job's
    /// output (seeded histogram; strata are small integers).
    pub strata: Arc<Histogram>,
}

impl MergeoutMetrics {
    pub fn register(registry: &Registry) -> Self {
        let labels: &[(&str, &str)] = &[("subsystem", "tm")];
        MergeoutMetrics {
            jobs: registry.counter("tm_mergeout_jobs_total", labels),
            rows_rewritten: registry.counter("tm_mergeout_rows_rewritten_total", labels),
            bytes_rewritten: registry.counter("tm_mergeout_bytes_rewritten_total", labels),
            inputs_merged: registry.counter("tm_mergeout_inputs_total", labels),
            strata: registry.histogram(
                "tm_mergeout_job_stratum",
                labels,
                vec![0, 1, 2, 3, 4, 6, 8],
                Determinism::Seeded,
            ),
        }
    }

    /// Record one executed merge job.
    pub fn record_job(&self, inputs: usize, rows: u64, bytes: u64, stratum: usize) {
        self.jobs.inc();
        self.inputs_merged.add(inputs as u64);
        self.rows_rewritten.add(rows);
        self.bytes_rewritten.add(bytes);
        self.strata.observe(stratum as u64);
    }
}

/// Tuning for mergeout planning.
#[derive(Debug, Clone)]
pub struct MergeoutPolicy {
    /// Row count ceiling of stratum 0.
    pub base_rows: u64,
    /// Size ratio between consecutive strata.
    pub factor: u64,
    /// Containers per stratum that trigger a merge, and the maximum
    /// fan-in of one job (large fan-ins are what §2.3 tries to avoid in
    /// the execution engine).
    pub fanin: usize,
    /// Fraction (0..=100) of deleted rows that makes a container
    /// eligible regardless of stratum pressure.
    pub purge_threshold_pct: u64,
}

impl Default for MergeoutPolicy {
    fn default() -> Self {
        MergeoutPolicy {
            base_rows: 4096,
            factor: 8,
            fanin: 4,
            purge_threshold_pct: 20,
        }
    }
}

impl MergeoutPolicy {
    /// Which stratum a container of `rows` rows belongs to.
    pub fn stratum(&self, rows: u64) -> usize {
        let mut bound = self.base_rows.max(1);
        let mut s = 0;
        while rows > bound && s < 62 {
            bound = bound.saturating_mul(self.factor.max(2));
            s += 1;
        }
        s
    }
}

/// A container as mergeout sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeInput {
    pub oid: Oid,
    pub rows: u64,
    pub deleted: u64,
}

/// One planned mergeout job: the input containers to replace with a
/// single merged output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeJob {
    pub inputs: Vec<Oid>,
}

/// Plan mergeout jobs for one projection+shard's containers.
///
/// Strategy: (1) any stratum holding ≥ `fanin` containers merges its
/// `fanin` smallest; (2) containers past the delete threshold merge in
/// pairs-or-more with their stratum neighbours (or alone, purely to
/// purge deletes, when no neighbour exists).
pub fn plan_mergeout(containers: &[MergeInput], policy: &MergeoutPolicy) -> Vec<MergeJob> {
    let mut by_stratum: HashMap<usize, Vec<MergeInput>> = HashMap::new();
    for c in containers {
        by_stratum.entry(policy.stratum(c.rows)).or_default().push(*c);
    }

    let mut jobs = Vec::new();
    let mut consumed: Vec<Oid> = Vec::new();
    let mut strata: Vec<_> = by_stratum.into_iter().collect();
    strata.sort_by_key(|(s, _)| *s);
    for (_, mut group) in strata {
        group.sort_by_key(|c| c.rows);
        // Rule 1: stratum pressure.
        while group.len() >= policy.fanin {
            let batch: Vec<MergeInput> = group.drain(..policy.fanin).collect();
            consumed.extend(batch.iter().map(|c| c.oid));
            jobs.push(MergeJob {
                inputs: batch.into_iter().map(|c| c.oid).collect(),
            });
        }
        // Rule 2: delete purge.
        let heavy: Vec<MergeInput> = group
            .iter()
            .filter(|c| {
                c.rows > 0 && c.deleted * 100 >= c.rows * policy.purge_threshold_pct
                    && policy.purge_threshold_pct > 0
            })
            .copied()
            .collect();
        for h in heavy {
            if consumed.contains(&h.oid) {
                continue;
            }
            consumed.push(h.oid);
            jobs.push(MergeJob {
                inputs: vec![h.oid],
            });
        }
    }
    jobs
}

/// K-way merge of already-sorted row batches by the given sort columns.
/// Stable across inputs (ties resolve by input index), so repeated
/// mergeouts are deterministic.
pub fn merge_sorted_rows(
    inputs: Vec<Vec<Vec<Value>>>,
    sort_cols: &[usize],
) -> Vec<Vec<Value>> {
    #[derive(PartialEq, Eq)]
    struct HeapKey(Vec<Value>, usize);
    impl Ord for HeapKey {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    impl PartialOrd for HeapKey {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let key_of = |row: &Vec<Value>| -> Vec<Value> {
        sort_cols.iter().map(|&c| row[c].clone()).collect()
    };

    let total: usize = inputs.iter().map(|v| v.len()).sum();
    let mut heads: Vec<usize> = vec![0; inputs.len()];
    let mut heap: BinaryHeap<Reverse<HeapKey>> = BinaryHeap::new();
    for (i, rows) in inputs.iter().enumerate() {
        if !rows.is_empty() {
            heap.push(Reverse(HeapKey(key_of(&rows[0]), i)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse(HeapKey(_, src))) = heap.pop() {
        let idx = heads[src];
        out.push(inputs[src][idx].clone());
        heads[src] += 1;
        if heads[src] < inputs[src].len() {
            heap.push(Reverse(HeapKey(key_of(&inputs[src][heads[src]]), src)));
        }
    }
    out
}

/// Select a mergeout coordinator per shard, balancing coordinator load
/// across nodes (§6.2: "taking care to keep the workload balanced").
/// `subscribers` lists the ACTIVE subscribers of each shard; only those
/// nodes are eligible for that shard.
pub fn select_coordinators(
    subscribers: &[(ShardId, Vec<NodeId>)],
) -> HashMap<ShardId, NodeId> {
    let mut load: HashMap<NodeId, usize> = HashMap::new();
    let mut out = HashMap::new();
    // Assign most-constrained shards first.
    let mut order: Vec<&(ShardId, Vec<NodeId>)> = subscribers.iter().collect();
    order.sort_by_key(|(s, nodes)| (nodes.len(), *s));
    for (shard, nodes) in order {
        if nodes.is_empty() {
            continue;
        }
        let pick = *nodes
            .iter()
            .min_by_key(|n| (load.get(n).copied().unwrap_or(0), n.0))
            .unwrap();
        *load.entry(pick).or_insert(0) += 1;
        out.insert(*shard, pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(oid: u64, rows: u64) -> MergeInput {
        MergeInput {
            oid: Oid(oid),
            rows,
            deleted: 0,
        }
    }

    #[test]
    fn strata_are_exponential() {
        let p = MergeoutPolicy::default();
        assert_eq!(p.stratum(100), 0);
        assert_eq!(p.stratum(4096), 0);
        assert_eq!(p.stratum(4097), 1);
        assert_eq!(p.stratum(32768), 1);
        assert_eq!(p.stratum(32769), 2);
    }

    #[test]
    fn stratum_pressure_triggers_merge() {
        let p = MergeoutPolicy::default();
        let containers: Vec<MergeInput> = (0..5).map(|i| c(i, 100)).collect();
        let jobs = plan_mergeout(&containers, &p);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].inputs.len(), 4); // fanin smallest
    }

    #[test]
    fn no_merge_below_fanin() {
        let p = MergeoutPolicy::default();
        let containers: Vec<MergeInput> = (0..3).map(|i| c(i, 100)).collect();
        assert!(plan_mergeout(&containers, &p).is_empty());
    }

    #[test]
    fn different_strata_do_not_mix() {
        let p = MergeoutPolicy::default();
        // 3 small + 3 large: neither stratum reaches fanin 4.
        let mut containers: Vec<MergeInput> = (0..3).map(|i| c(i, 100)).collect();
        containers.extend((10..13).map(|i| c(i, 100_000)));
        assert!(plan_mergeout(&containers, &p).is_empty());
    }

    #[test]
    fn delete_heavy_container_purges() {
        let p = MergeoutPolicy::default();
        let containers = vec![
            MergeInput {
                oid: Oid(1),
                rows: 1000,
                deleted: 400,
            },
            c(2, 1000),
        ];
        let jobs = plan_mergeout(&containers, &p);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].inputs, vec![Oid(1)]);
    }

    #[test]
    fn tuples_merge_logarithmically() {
        // Simulate repeated loads of 1000-row containers and count how
        // many times a tuple generation is merged. With fanin 4 and
        // factor 8 the bound is ~log_4 of the total.
        let p = MergeoutPolicy {
            base_rows: 1000,
            factor: 4,
            fanin: 4,
            purge_threshold_pct: 0,
        };
        let mut containers: Vec<MergeInput> = Vec::new();
        let mut next_oid = 0u64;
        let mut merge_events = 0u64;
        let mut merged_rows = 0u64;
        let mut total_rows = 0u64;
        for _ in 0..256 {
            containers.push(c(next_oid, 1000));
            next_oid += 1;
            total_rows += 1000;
            loop {
                let jobs = plan_mergeout(&containers, &p);
                if jobs.is_empty() {
                    break;
                }
                for job in jobs {
                    let rows: u64 = job
                        .inputs
                        .iter()
                        .map(|oid| {
                            containers.iter().find(|x| x.oid == *oid).unwrap().rows
                        })
                        .sum();
                    containers.retain(|x| !job.inputs.contains(&x.oid));
                    containers.push(c(next_oid, rows));
                    next_oid += 1;
                    merge_events += 1;
                    merged_rows += rows;
                }
            }
        }
        // Average merges per tuple = merged_rows / total_rows; should
        // be small (each tuple merged a fixed number of times).
        let avg = merged_rows as f64 / total_rows as f64;
        assert!(avg < 6.0, "tuples merged {avg} times on average");
        assert!(merge_events > 0);
        // Container count stays bounded.
        assert!(containers.len() < 16, "{} containers", containers.len());
    }

    #[test]
    fn kway_merge_produces_sorted_output() {
        let a = vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(5), Value::Str("a".into())],
        ];
        let b = vec![
            vec![Value::Int(2), Value::Str("b".into())],
            vec![Value::Int(9), Value::Str("b".into())],
        ];
        let c = vec![vec![Value::Int(3), Value::Str("c".into())]];
        let merged = merge_sorted_rows(vec![a, b, c], &[0]);
        let keys: Vec<i64> = merged.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 9]);
    }

    #[test]
    fn kway_merge_is_stable_on_ties() {
        let a = vec![vec![Value::Int(1), Value::Str("first".into())]];
        let b = vec![vec![Value::Int(1), Value::Str("second".into())]];
        let merged = merge_sorted_rows(vec![a, b], &[0]);
        assert_eq!(merged[0][1], Value::Str("first".into()));
        assert_eq!(merged[1][1], Value::Str("second".into()));
    }

    #[test]
    fn kway_merge_empty_inputs() {
        assert!(merge_sorted_rows(vec![], &[0]).is_empty());
        assert!(merge_sorted_rows(vec![vec![], vec![]], &[0]).is_empty());
    }

    #[test]
    fn coordinators_balanced() {
        let subs: Vec<(ShardId, Vec<NodeId>)> = (0..4)
            .map(|s| {
                (
                    ShardId(s),
                    vec![NodeId(s % 2), NodeId((s + 1) % 2)],
                )
            })
            .collect();
        let coords = select_coordinators(&subs);
        assert_eq!(coords.len(), 4);
        let n0 = coords.values().filter(|n| n.0 == 0).count();
        assert_eq!(n0, 2, "coordinators should balance: {coords:?}");
    }

    #[test]
    fn coordinator_reassigned_on_failure() {
        // Shard 0's subscribers shrink to node 1 only (node 0 died):
        // the new selection must pick node 1.
        let subs = vec![(ShardId(0), vec![NodeId(1)])];
        let coords = select_coordinators(&subs);
        assert_eq!(coords[&ShardId(0)], NodeId(1));
        // No subscribers → no coordinator (cluster handles separately).
        let none = select_coordinators(&[(ShardId(0), vec![])]);
        assert!(none.is_empty());
    }
}
