//! The Write Optimized Store — Enterprise mode only.
//!
//! §2.3: in-memory, unencoded, buffers small writes until moveout sorts
//! and spills them as a ROS container. §5.1 explains why Eon mode drops
//! it: data in a WOS can be lost on crash, and asymmetric memory
//! pressure makes node storage diverge. The Enterprise baseline keeps
//! it so the comparison in the benches is faithful.

use std::collections::HashMap;

use eon_types::{Oid, Value};
use parking_lot::Mutex;

/// Per-projection in-memory row buffer.
pub struct Wos {
    /// Moveout trigger: buffered rows per projection.
    moveout_threshold: usize,
    buffers: Mutex<HashMap<Oid, Vec<Vec<Value>>>>,
}

impl Wos {
    pub fn new(moveout_threshold: usize) -> Self {
        Wos {
            moveout_threshold: moveout_threshold.max(1),
            buffers: Mutex::new(HashMap::new()),
        }
    }

    /// Buffer rows for a projection; returns true when the projection
    /// has crossed the moveout threshold.
    pub fn append(&self, projection: Oid, rows: Vec<Vec<Value>>) -> bool {
        let mut g = self.buffers.lock();
        let buf = g.entry(projection).or_default();
        buf.extend(rows);
        buf.len() >= self.moveout_threshold
    }

    /// Rows currently buffered for a projection (queries must read the
    /// WOS too — it holds committed data in Enterprise mode).
    pub fn rows(&self, projection: Oid) -> Vec<Vec<Value>> {
        self.buffers
            .lock()
            .get(&projection)
            .cloned()
            .unwrap_or_default()
    }

    pub fn buffered_count(&self, projection: Oid) -> usize {
        self.buffers
            .lock()
            .get(&projection)
            .map(|b| b.len())
            .unwrap_or(0)
    }

    /// Moveout: drain the buffer for conversion to a ROS container.
    /// The caller sorts (WOS data is unsorted by design) and writes.
    pub fn moveout(&self, projection: Oid) -> Vec<Vec<Value>> {
        self.buffers
            .lock()
            .remove(&projection)
            .unwrap_or_default()
    }

    /// Total rows across all projections (memory pressure signal).
    pub fn total_rows(&self) -> usize {
        self.buffers.lock().values().map(|b| b.len()).sum()
    }

    /// Crash simulation: in-memory contents vanish. This is exactly the
    /// §5.1 durability gap Eon closes by not having a WOS.
    pub fn crash(&self) {
        self.buffers.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n).map(|i| vec![Value::Int(i)]).collect()
    }

    #[test]
    fn buffers_until_threshold() {
        let wos = Wos::new(10);
        assert!(!wos.append(Oid(1), rows(5)));
        assert_eq!(wos.buffered_count(Oid(1)), 5);
        assert!(wos.append(Oid(1), rows(5)));
        assert_eq!(wos.buffered_count(Oid(1)), 10);
    }

    #[test]
    fn moveout_drains() {
        let wos = Wos::new(4);
        wos.append(Oid(1), rows(6));
        let drained = wos.moveout(Oid(1));
        assert_eq!(drained.len(), 6);
        assert_eq!(wos.buffered_count(Oid(1)), 0);
        assert!(wos.moveout(Oid(1)).is_empty());
    }

    #[test]
    fn projections_are_independent() {
        let wos = Wos::new(100);
        wos.append(Oid(1), rows(3));
        wos.append(Oid(2), rows(4));
        assert_eq!(wos.rows(Oid(1)).len(), 3);
        assert_eq!(wos.rows(Oid(2)).len(), 4);
        assert_eq!(wos.total_rows(), 7);
    }

    #[test]
    fn crash_loses_buffered_data() {
        let wos = Wos::new(100);
        wos.append(Oid(1), rows(50));
        wos.crash();
        assert_eq!(wos.total_rows(), 0);
    }
}
