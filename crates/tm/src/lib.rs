//! The Tuple Mover (paper §2.3, §6.2).
//!
//! * [`mergeout`] — compaction planning with the exponentially tiered
//!   strata algorithm ("merge each tuple a small fixed number of
//!   times"), the k-way sorted merge that executes a job (purging
//!   deleted rows), and coordinator selection for Eon mode (§6.2: one
//!   coordinator per shard so conflicting jobs never run concurrently,
//!   rebalanced when nodes fail).
//! * [`wos`] — the Write Optimized Store and moveout. Eon mode does
//!   **not** support the WOS (§5.1); this module exists solely for the
//!   Enterprise baseline the evaluation compares against.

pub mod mergeout;
pub mod wos;

pub use mergeout::{
    merge_sorted_rows, plan_mergeout, select_coordinators, MergeJob, MergeoutMetrics,
    MergeoutPolicy,
};
pub use wos::Wos;
