//! Admission control: per-subcluster resource pools (DESIGN.md
//! "Admission control & workload management").
//!
//! The §4.2 slot semaphore bounds *fragment* concurrency on one node;
//! it says nothing about how many sessions may pile up waiting. Under
//! heavy traffic a bare semaphore parks every extra session forever —
//! the availability bug production Vertica prevents with its resource
//! manager's admission queues. This module adds that missing layer:
//!
//! * each subcluster (§4.3) gets a **resource pool** bounding how many
//!   queries *run* concurrently ([`crate::EonConfig::admission_max_concurrent`])
//!   and how many may *wait* ([`crate::EonConfig::admission_max_queue`]);
//! * a full queue rejects new arrivals immediately with the typed
//!   [`EonError::Saturated`] backpressure error — clients shed load
//!   instead of hanging;
//! * a queued session waits on a **planned-wait budget**
//!   ([`crate::EonConfig::admission_timeout_ms`]): the budget is consumed by the
//!   planned condvar tick, never measured wall clock, so how many ticks
//!   a session waits before `DeadlineExceeded` is deterministic;
//! * a fired [`eon_types::CancelToken`] wakes the session out of the
//!   queue with `Cancelled`.
//!
//! With `admission_max_concurrent == 0` (the default) the layer is a
//! no-op pass-through and queries go straight to the slot semaphore.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eon_obs::{Counter, Gauge, Histogram, Registry};
use eon_types::{CancelToken, EonError, Result};
use parking_lot::{Condvar, Mutex};

/// Pool limits, copied out of `EonConfig` at database creation.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionLimits {
    pub max_concurrent: usize,
    pub max_queue: usize,
    pub timeout: Option<Duration>,
}

impl AdmissionLimits {
    pub fn from_config(cfg: &crate::EonConfig) -> Self {
        AdmissionLimits {
            max_concurrent: cfg.admission_max_concurrent,
            max_queue: cfg.admission_max_queue,
            timeout: match cfg.admission_timeout_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
        }
    }

    fn enabled(&self) -> bool {
        self.max_concurrent > 0
    }
}

struct PoolMetrics {
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    timeouts: Arc<Counter>,
    cancelled: Arc<Counter>,
    running: Arc<Gauge>,
    queued: Arc<Gauge>,
    wait_us: Arc<Histogram>,
}

impl PoolMetrics {
    fn register(registry: &Registry, subcluster: u64) -> Self {
        let sc = format!("sc{subcluster}");
        let labels: &[(&str, &str)] = &[("pool", &sc), ("subsystem", "admission")];
        PoolMetrics {
            admitted: registry.counter("admission_admitted_total", labels),
            rejected: registry.counter("admission_rejected_total", labels),
            timeouts: registry.counter("admission_timeouts_total", labels),
            cancelled: registry.counter("admission_cancelled_total", labels),
            running: registry.gauge("admission_running", labels),
            queued: registry.gauge("admission_queued", labels),
            wait_us: registry.timing_histogram("admission_wait_us", labels),
        }
    }
}

struct PoolState {
    running: usize,
    queued: usize,
}

/// One subcluster's resource pool.
struct Pool {
    limits: AdmissionLimits,
    state: Mutex<PoolState>,
    cv: Condvar,
    metrics: PoolMetrics,
}

/// RAII admission: the session counts against its pool's `running`
/// bound until dropped.
pub struct AdmissionGuard {
    pool: Arc<Pool>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock();
        st.running -= 1;
        self.pool.metrics.running.set(st.running as i64);
        self.pool.cv.notify_all();
    }
}

impl std::fmt::Debug for AdmissionGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionGuard").finish()
    }
}

/// The database-wide admission layer: one pool per subcluster, created
/// lazily on first use.
pub struct AdmissionControl {
    limits: AdmissionLimits,
    registry: Registry,
    pools: Mutex<HashMap<u64, Arc<Pool>>>,
}

impl AdmissionControl {
    pub fn new(limits: AdmissionLimits, registry: Registry) -> Self {
        AdmissionControl {
            limits,
            registry,
            pools: Mutex::new(HashMap::new()),
        }
    }

    pub fn enabled(&self) -> bool {
        self.limits.enabled()
    }

    fn pool(&self, subcluster: u64) -> Arc<Pool> {
        self.pools
            .lock()
            .entry(subcluster)
            .or_insert_with(|| {
                Arc::new(Pool {
                    limits: self.limits,
                    state: Mutex::new(PoolState {
                        running: 0,
                        queued: 0,
                    }),
                    cv: Condvar::new(),
                    metrics: PoolMetrics::register(&self.registry, subcluster),
                })
            })
            .clone()
    }

    /// Admit one session into `subcluster`'s pool. Returns `Ok(None)`
    /// when admission control is disabled. Never blocks indefinitely:
    /// the outcome is a guard, `Saturated` (queue full), `Cancelled`,
    /// or `DeadlineExceeded` — within the configured queue timeout.
    pub fn admit(
        &self,
        subcluster: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<AdmissionGuard>> {
        if !self.limits.enabled() {
            return Ok(None);
        }
        let pool = self.pool(subcluster);
        let queued_at = Instant::now();
        let tick = Duration::from_millis(1);
        let mut planned = Duration::ZERO;
        let mut st = pool.state.lock();
        if st.running < pool.limits.max_concurrent {
            st.running += 1;
            pool.metrics.running.set(st.running as i64);
            drop(st);
            pool.metrics.admitted.inc();
            pool.metrics.wait_us.observe(0);
            return Ok(Some(AdmissionGuard { pool }));
        }
        // Pool is at its concurrency bound — queue, or reject if the
        // queue itself is full. `Saturated` is the typed backpressure
        // signal: the caller sheds load instead of parking.
        if pool.limits.max_queue > 0 && st.queued >= pool.limits.max_queue {
            let err = EonError::Saturated {
                queued: st.queued,
                depth: pool.limits.max_queue,
            };
            drop(st);
            pool.metrics.rejected.inc();
            return Err(err);
        }
        st.queued += 1;
        pool.metrics.queued.set(st.queued as i64);
        let outcome = loop {
            if let Some(c) = cancel {
                if c.is_cancelled() {
                    break Err(EonError::Cancelled("admission queue".into()));
                }
            }
            if st.running < pool.limits.max_concurrent {
                st.running += 1;
                pool.metrics.running.set(st.running as i64);
                break Ok(());
            }
            if let Some(deadline) = pool.limits.timeout {
                if planned >= deadline {
                    break Err(EonError::DeadlineExceeded(format!(
                        "admission queue budget {deadline:?} spent in pool sc{subcluster}"
                    )));
                }
            }
            pool.cv.wait_for(&mut st, tick);
            planned += tick;
        };
        st.queued -= 1;
        pool.metrics.queued.set(st.queued as i64);
        drop(st);
        match outcome {
            Ok(()) => {
                pool.metrics.admitted.inc();
                pool.metrics
                    .wait_us
                    .observe(queued_at.elapsed().as_micros() as u64);
                Ok(Some(AdmissionGuard { pool }))
            }
            Err(e) => {
                match &e {
                    EonError::Cancelled(_) => pool.metrics.cancelled.inc(),
                    _ => pool.metrics.timeouts.inc(),
                }
                Err(e)
            }
        }
    }

    /// (running, queued) for one pool — test/bench introspection.
    pub fn pool_depths(&self, subcluster: u64) -> (usize, usize) {
        let pool = self.pool(subcluster);
        let st = pool.state.lock();
        (st.running, st.queued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(max_concurrent: usize, max_queue: usize, timeout_ms: u64) -> AdmissionControl {
        AdmissionControl::new(
            AdmissionLimits {
                max_concurrent,
                max_queue,
                timeout: match timeout_ms {
                    0 => None,
                    ms => Some(Duration::from_millis(ms)),
                },
            },
            Registry::new(),
        )
    }

    #[test]
    fn disabled_is_pass_through() {
        let c = ctl(0, 0, 0);
        assert!(c.admit(0, None).unwrap().is_none());
    }

    #[test]
    fn full_queue_rejects_with_saturated() {
        let c = Arc::new(ctl(1, 1, 0));
        let _running = c.admit(0, None).unwrap().unwrap();
        // One waiter fills the queue...
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || c2.admit(0, None));
        while c.pool_depths(0).1 < 1 {
            std::thread::yield_now();
        }
        // ...so the next arrival is shed immediately.
        let err = c.admit(0, None).unwrap_err();
        assert!(
            matches!(err, EonError::Saturated { queued: 1, depth: 1 }),
            "{err}"
        );
        drop(_running);
        assert!(waiter.join().unwrap().unwrap().is_some());
    }

    #[test]
    fn queue_timeout_is_deadline_exceeded() {
        let c = ctl(1, 0, 10);
        let _running = c.admit(0, None).unwrap().unwrap();
        let err = c.admit(0, None).unwrap_err();
        assert!(matches!(err, EonError::DeadlineExceeded(_)), "{err}");
        // The expired waiter left the queue.
        assert_eq!(c.pool_depths(0), (1, 0));
    }

    #[test]
    fn cancel_wakes_queued_session() {
        let c = Arc::new(ctl(1, 0, 0));
        let _running = c.admit(0, None).unwrap().unwrap();
        let token = CancelToken::new();
        let (c2, t2) = (c.clone(), token.clone());
        let waiter = std::thread::spawn(move || c2.admit(0, Some(&t2)));
        while c.pool_depths(0).1 < 1 {
            std::thread::yield_now();
        }
        token.cancel();
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, EonError::Cancelled(_)), "{err}");
    }

    #[test]
    fn subclusters_are_isolated_pools() {
        let c = ctl(1, 1, 0);
        let _a = c.admit(0, None).unwrap().unwrap();
        // Subcluster 7 has its own pool: admitted immediately.
        let _b = c.admit(7, None).unwrap().unwrap();
        assert_eq!(c.pool_depths(0), (1, 0));
        assert_eq!(c.pool_depths(7), (1, 0));
    }

    #[test]
    fn guard_drop_admits_next() {
        let c = ctl(2, 0, 0);
        let a = c.admit(0, None).unwrap().unwrap();
        let b = c.admit(0, None).unwrap().unwrap();
        assert_eq!(c.pool_depths(0).0, 2);
        drop(a);
        drop(b);
        assert_eq!(c.pool_depths(0), (0, 0));
    }
}
