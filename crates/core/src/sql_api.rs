//! SQL convenience entry point: parse, plan against the live catalog,
//! execute.

use std::sync::Arc;

use eon_sql::SchemaSource;
use eon_types::{EonError, Result, Schema, Value};

use crate::db::EonDb;
use crate::query::SessionOpts;

struct SnapshotSchemas(Arc<eon_catalog::CatalogState>);

impl SchemaSource for SnapshotSchemas {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        self.0
            .table_by_name(name)
            .map(|t| t.schema.clone())
            .ok_or_else(|| EonError::UnknownTable(name.to_owned()))
    }
}

/// A SQL result with its output column labels — the shape a network
/// client renders as a table (see `eon-net`).
#[derive(Debug, Clone, PartialEq)]
pub struct SqlResult {
    /// One label per output column (alias or rendered expression).
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl EonDb {
    /// Run a SQL SELECT against the cluster. See `eon-sql` for the
    /// supported grammar.
    pub fn sql(&self, query: &str) -> Result<Vec<Vec<Value>>> {
        self.sql_with(query, &SessionOpts::default())
    }

    /// The serverable SQL surface: rows **plus column labels**, under
    /// full session options. This is what `eon-server` calls per
    /// request — everything (admission, slots, cancellation) rides the
    /// same path as [`EonDb::sql_with`].
    pub fn sql_query(&self, query: &str, opts: &SessionOpts) -> Result<SqlResult> {
        let schemas = SnapshotSchemas(self.snapshot()?);
        let (plan, columns) = eon_sql::compile_with_columns(query, &schemas)?;
        let rows = self.query_with(&plan, opts)?;
        Ok(SqlResult { columns, rows })
    }

    /// SQL with session options (subcluster, cache bypass, crunch).
    pub fn sql_with(&self, query: &str, opts: &SessionOpts) -> Result<Vec<Vec<Value>>> {
        let schemas = SnapshotSchemas(self.snapshot()?);
        let plan = eon_sql::compile(query, &schemas)?;
        self.query_with(&plan, opts)
    }

    /// `EXPLAIN`: render the plan a statement would run, without
    /// executing it.
    pub fn sql_explain(&self, query: &str) -> Result<String> {
        let schemas = SnapshotSchemas(self.snapshot()?);
        eon_sql::explain(query, &schemas)
    }

    /// `EXPLAIN ANALYZE`: execute the statement and return its rows
    /// together with a text report combining the plan tree and the
    /// per-query profile (compile time, per-participant slot wait and
    /// local-phase time, coordinator merge, failovers, rows returned).
    pub fn sql_explain_analyze(
        &self,
        query: &str,
        opts: &SessionOpts,
    ) -> Result<(Vec<Vec<Value>>, String)> {
        let compile_started = std::time::Instant::now();
        let schemas = SnapshotSchemas(self.snapshot()?);
        let plan = eon_sql::compile(query, &schemas)?;
        let compile_us = compile_started.elapsed().as_micros() as u64;
        let (rows, profile) = self.query_profiled(&plan, opts)?;
        profile.record_span("compile", "", compile_us);
        let report = format!("{}\n{}", plan.describe(), profile.render());
        Ok((rows, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_columnar::Projection;
    use eon_storage::MemFs;
    use eon_types::schema;

    fn db_loaded() -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("grp", Str), ("price", Int), ("region_id", Int)];
        db.create_table(
            "sales",
            s.clone(),
            vec![Projection::super_projection("sales_super", &s, &[0], &[0])],
        )
        .unwrap();
        let r = schema![("region_id", Int), ("region", Str)];
        db.create_table(
            "regions",
            r.clone(),
            vec![Projection::replicated("regions_rep", &r, &[0])],
        )
        .unwrap();
        db.copy_into(
            "regions",
            vec![
                vec![Value::Int(0), Value::Str("NA".into())],
                vec![Value::Int(1), Value::Str("EU".into())],
            ],
        )
        .unwrap();
        db.copy_into(
            "sales",
            (0..1000)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Str(if i % 3 == 0 { "a" } else { "b" }.into()),
                        Value::Int(i % 50),
                        Value::Int(i % 2),
                    ]
                })
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn simple_filter_and_projection() {
        let db = db_loaded();
        let rows = db
            .sql("SELECT id, price FROM sales WHERE id < 3 ORDER BY id")
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec![Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn grouped_aggregation_matches_manual_math() {
        let db = db_loaded();
        let rows = db
            .sql("SELECT grp, COUNT(*), SUM(price) FROM sales GROUP BY grp ORDER BY grp")
            .unwrap();
        assert_eq!(rows.len(), 2);
        let count_a: i64 = (0..1000).filter(|i| i % 3 == 0).count() as i64;
        let sum_a: i64 = (0..1000).filter(|i| i % 3 == 0).map(|i| i % 50).sum();
        assert_eq!(rows[0], vec![Value::Str("a".into()), Value::Int(count_a), Value::Int(sum_a)]);
    }

    #[test]
    fn join_with_aliases_and_having() {
        let db = db_loaded();
        let rows = db
            .sql(
                "SELECT r.region, SUM(s.price) AS total \
                 FROM sales s JOIN regions r ON s.region_id = r.region_id \
                 GROUP BY r.region HAVING total > 0 ORDER BY total DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        // Region with odd ids (EU) or even (NA): compute both and take
        // the max.
        let sum_for = |m: i64| -> i64 { (0..1000).filter(|i| i % 2 == m).map(|i| i % 50).sum() };
        let expect = sum_for(0).max(sum_for(1));
        assert_eq!(rows[0][1], Value::Int(expect));
    }

    #[test]
    fn where_pushdown_and_expressions() {
        let db = db_loaded();
        let rows = db
            .sql(
                "SELECT AVG(price * 2) FROM sales \
                 WHERE price BETWEEN 10 AND 19 AND grp = 'a'",
            )
            .unwrap();
        let matching: Vec<i64> = (0..1000i64)
            .filter(|i| i % 3 == 0 && (10..=19).contains(&(i % 50)))
            .map(|i| (i % 50) * 2)
            .collect();
        let expect = matching.iter().sum::<i64>() as f64 / matching.len() as f64;
        assert_eq!(rows[0][0], Value::Float(expect));
    }

    #[test]
    fn count_distinct_and_in_list() {
        let db = db_loaded();
        let rows = db
            .sql("SELECT COUNT(DISTINCT price) FROM sales WHERE grp IN ('a', 'b')")
            .unwrap();
        assert_eq!(rows[0][0], Value::Int(50));
    }

    #[test]
    fn sql_query_returns_column_labels() {
        let db = db_loaded();
        let res = db
            .sql_query(
                "SELECT grp, COUNT(*), SUM(price) AS total FROM sales GROUP BY grp ORDER BY grp",
                &SessionOpts::default(),
            )
            .unwrap();
        assert_eq!(res.columns, vec!["grp", "COUNT(*)", "total"]);
        assert_eq!(res.rows.len(), 2);
        assert_eq!(res.rows.len(), db.sql("SELECT grp, COUNT(*), SUM(price) AS total FROM sales GROUP BY grp ORDER BY grp").unwrap().len());
    }

    #[test]
    fn multibyte_literals_execute_byte_exact() {
        // The lexer round-trips UTF-8; the executor must match on the
        // exact bytes, end to end.
        let db = db_loaded();
        db.copy_into(
            "regions",
            vec![vec![Value::Int(2), Value::Str("café ☕".into())]],
        )
        .unwrap();
        let rows = db
            .sql("SELECT region_id FROM regions WHERE region = 'café ☕'")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn errors_are_user_legible() {
        let db = db_loaded();
        assert!(db.sql("SELECT nope FROM sales").is_err());
        assert!(db.sql("SELECT id FROM ghost_table").is_err());
        assert!(db.sql("SELECT id FROM sales WHERE").is_err());
        // Ambiguous column across joined tables.
        assert!(db
            .sql("SELECT region_id FROM sales s JOIN regions r ON s.region_id = r.region_id")
            .is_err());
    }

    #[test]
    fn explain_shows_pushdown_without_executing() {
        let db = db_loaded();
        let text = db
            .sql_explain("SELECT grp, COUNT(*) FROM sales WHERE price > 10 GROUP BY grp")
            .unwrap();
        assert!(text.contains("Scan sales"), "{text}");
        assert!(text.contains("[pushdown]"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn explain_analyze_returns_rows_and_profile() {
        let db = db_loaded();
        let (rows, report) = db
            .sql_explain_analyze(
                "SELECT grp, COUNT(*) FROM sales GROUP BY grp ORDER BY grp",
                &SessionOpts::default(),
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(report.contains("Scan sales"), "{report}");
        assert!(report.contains("Query Profile"), "{report}");
        assert!(report.contains("local_phase"), "{report}");
        assert!(report.contains("rows_returned = 2"), "{report}");
    }

    #[test]
    fn explain_analyze_reports_pushdown() {
        use eon_storage::{S3Config, S3SimFs};
        // An object store that answers selects, with the crossover
        // knobs opened so the small test containers qualify.
        let db = EonDb::create(
            Arc::new(S3SimFs::new(S3Config::instant())),
            EonConfig::new(3, 3)
                .pushdown_min_bytes(0)
                .pushdown_max_selectivity(1.0),
        )
        .unwrap();
        let s = schema![("id", Int), ("grp", Str), ("price", Int)];
        db.create_table(
            "sales",
            s.clone(),
            vec![Projection::super_projection("sales_super", &s, &[0], &[0])],
        )
        .unwrap();
        db.copy_into(
            "sales",
            (0..1000)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Str(if i % 3 == 0 { "a" } else { "b" }.into()),
                        Value::Int(i % 50),
                    ]
                })
                .collect(),
        )
        .unwrap();
        // The load wrote through the depots; pushdown only engages on
        // depot-cold files (cached reads are already cheap), so start
        // cold.
        for node in db.membership().all() {
            node.cache.clear().unwrap();
        }
        let (rows, report) = db
            .sql_explain_analyze(
                "SELECT id, price FROM sales WHERE price < 5 ORDER BY id",
                &SessionOpts::default(),
            )
            .unwrap();
        assert_eq!(rows.len(), 100);
        assert!(report.contains("pushdown_selects ="), "{report}");
        assert!(report.contains("pushdown_bytes_saved ="), "{report}");
    }

    #[test]
    fn sql_agrees_with_plan_api() {
        use eon_exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
        let db = db_loaded();
        let via_sql = db
            .sql("SELECT grp, MIN(price), MAX(price) FROM sales GROUP BY grp ORDER BY grp")
            .unwrap();
        let plan = Plan::scan(ScanSpec::new("sales"))
            .aggregate(
                vec![1],
                vec![AggSpec::min(Expr::col(2)), AggSpec::max(Expr::col(2))],
            )
            .sort(vec![SortKey::asc(0)]);
        assert_eq!(via_sql, db.query(&plan).unwrap());
    }
}
