//! S3-Select-style pushdown (DESIGN.md "Pushdown execution").
//!
//! The store exposes a `select` verb ([`eon_storage::FileSystem::select`])
//! that runs a [`SelectRequest`] against one ROS container *inside* the
//! store and returns only surviving rows — or merged partial aggregates —
//! instead of whole column blocks. This module supplies both halves of
//! the contract:
//!
//! * the wire format ([`SelectRequest`] / [`SelectResponse`]), encoded
//!   with the same checked binary codec as the container format itself
//!   (`eon_columnar::format`), so `Float` bit patterns — NaNs included —
//!   round-trip exactly;
//! * the compute engine ([`RosSelectEngine`]), installed into the shared
//!   store at `EonDb` construction. It parses the object with the very
//!   same `RosReader` / `eval_block` / `aggregate_partial` code the scan
//!   path uses locally, which is what makes pushdown-on output *byte
//!   identical* to pushdown-off output.
//!
//! The engine answers (`Ok(Some)`), declines (`Ok(None)` — the caller
//! falls back to plain GETs, nothing is charged), or errors (corrupt
//! object / malformed request — surfaced through the retry loop and the
//! circuit breaker like any other storage failure). Declines are a pure
//! function of (object, request), so they never perturb the fault-dice
//! schedule of the simulated store.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use eon_columnar::container::RosFooter;
use eon_columnar::format::{Reader, Writer};
use eon_columnar::pruning::CmpOp;
use eon_columnar::{BlockCol, EncodedBlock, Predicate, ReadStats, RosReader};
use eon_exec::agg::{aggregate_partial, AggState, PartialGroup, Partials};
use eon_exec::{AggFunc, AggSpec, Expr};
use eon_storage::{FileSystem, FsStats, SelectEngine, SelectOutput};
use eon_types::{EonError, Result, Value};

/// Bumped whenever the request/response layout changes; the engine
/// rejects versions it does not speak instead of misparsing them.
pub const WIRE_VERSION: u8 = 1;

/// Collect the column indices a predicate touches, sorted and deduped.
pub fn predicate_cols(p: &Predicate) -> Vec<usize> {
    fn walk(p: &Predicate, out: &mut Vec<usize>) {
        match p {
            Predicate::True => {}
            Predicate::Cmp { col, .. } | Predicate::IsNull(col) | Predicate::IsNotNull(col) => {
                out.push(*col)
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for q in ps {
                    walk(q, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(p, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------

/// Partial-aggregate half of a select request: fold predicate survivors
/// into per-group [`AggState`]s inside the store and ship the states.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRequest {
    /// Group-key columns, in the same row space as the predicate.
    pub group_by: Vec<usize>,
    /// Aggregates; every spec must satisfy [`agg_pushable`].
    pub aggs: Vec<AggSpec>,
    /// The engine declines (rather than answers) when the container
    /// produces more groups than this — shipping a huge group table
    /// would cost more than the blocks themselves.
    pub max_groups: u64,
}

/// One pushed-down unit of scan work against a single ROS container.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectRequest {
    /// Row width the predicate's column indices are resolved against
    /// (the projection width node-side). Columns without data evaluate
    /// as `Null`, exactly as in the local late-materialization path.
    pub width: usize,
    pub predicate: Predicate,
    /// Per-block keep mask after node-side min/max pruning; the engine
    /// never touches a pruned block.
    pub keep: Vec<bool>,
    /// Columns to return (rows mode) or to materialize for aggregation
    /// (agg mode). Must be physically present in the container — the
    /// node keeps columns that need table defaults on the local path.
    pub read_cols: Vec<usize>,
    /// `Some` switches the request to partial-aggregate mode.
    pub agg: Option<AggRequest>,
}

/// `(wire tag, input column)` for a pushable aggregate, `None` when the
/// spec cannot go below the GET. Pushable: SUM/COUNT/MIN/MAX over a bare
/// column, plus COUNT(*). AVG and COUNT(DISTINCT) stay node-side (their
/// states are pushable in principle, but keeping the eligible set small
/// keeps the byte-exactness argument auditable), and float SUMs are
/// declined by the engine after the fold (non-associative).
pub fn agg_wire(spec: &AggSpec) -> Option<(u8, usize)> {
    match (spec.func, &spec.expr) {
        (AggFunc::Sum, Expr::Col(c)) => Some((0, *c)),
        (AggFunc::Count, Expr::Col(c)) => Some((1, *c)),
        (AggFunc::CountStar, _) => Some((2, 0)),
        (AggFunc::Min, Expr::Col(c)) => Some((3, *c)),
        (AggFunc::Max, Expr::Col(c)) => Some((4, *c)),
        _ => None,
    }
}

/// Whether a whole aggregate list can be pushed below the GET.
pub fn agg_pushable(aggs: &[AggSpec]) -> bool {
    !aggs.is_empty() && aggs.iter().all(|s| agg_wire(s).is_some())
}

fn agg_from_wire(tag: u8, col: usize) -> Result<AggSpec> {
    Ok(match tag {
        0 => AggSpec::sum(Expr::col(col)),
        1 => AggSpec::new(AggFunc::Count, Expr::col(col)),
        2 => AggSpec::count_star(),
        3 => AggSpec::min(Expr::col(col)),
        4 => AggSpec::max(Expr::col(col)),
        t => return Err(EonError::Corrupt(format!("bad aggregate tag {t}"))),
    })
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from_tag(t: u8) -> Result<CmpOp> {
    Ok(match t {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(EonError::Corrupt(format!("bad cmp tag {t}"))),
    })
}

fn encode_predicate(w: &mut Writer, p: &Predicate) {
    match p {
        Predicate::True => w.put_u8(0),
        Predicate::Cmp { col, op, lit } => {
            w.put_u8(1);
            w.put_varint(*col as u64);
            w.put_u8(cmp_tag(*op));
            w.put_value(lit);
        }
        Predicate::IsNull(c) => {
            w.put_u8(2);
            w.put_varint(*c as u64);
        }
        Predicate::IsNotNull(c) => {
            w.put_u8(3);
            w.put_varint(*c as u64);
        }
        Predicate::And(ps) | Predicate::Or(ps) => {
            w.put_u8(if matches!(p, Predicate::And(_)) { 4 } else { 5 });
            w.put_varint(ps.len() as u64);
            for q in ps {
                encode_predicate(w, q);
            }
        }
    }
}

fn decode_predicate(r: &mut Reader, depth: usize) -> Result<Predicate> {
    if depth > 64 {
        return Err(EonError::Corrupt("predicate nesting too deep".into()));
    }
    Ok(match r.get_u8()? {
        0 => Predicate::True,
        1 => Predicate::Cmp {
            col: r.get_varint()? as usize,
            op: cmp_from_tag(r.get_u8()?)?,
            lit: r.get_value()?,
        },
        2 => Predicate::IsNull(r.get_varint()? as usize),
        3 => Predicate::IsNotNull(r.get_varint()? as usize),
        t @ (4 | 5) => {
            let n = r.get_varint()? as usize;
            if n > r.remaining() {
                return Err(EonError::Corrupt("predicate arity exceeds buffer".into()));
            }
            let ps = (0..n)
                .map(|_| decode_predicate(r, depth + 1))
                .collect::<Result<Vec<_>>>()?;
            if t == 4 {
                Predicate::And(ps)
            } else {
                Predicate::Or(ps)
            }
        }
        t => return Err(EonError::Corrupt(format!("bad predicate tag {t}"))),
    })
}

fn decode_index_list(r: &mut Reader) -> Result<Vec<usize>> {
    let n = r.get_varint()? as usize;
    if n > r.remaining() {
        return Err(EonError::Corrupt("index list exceeds buffer".into()));
    }
    (0..n).map(|_| Ok(r.get_varint()? as usize)).collect()
}

impl SelectRequest {
    pub fn encode(&self) -> Result<Bytes> {
        let mut w = Writer::new();
        w.put_u8(WIRE_VERSION);
        w.put_u8(self.agg.is_some() as u8);
        w.put_varint(self.width as u64);
        encode_predicate(&mut w, &self.predicate);
        w.put_varint(self.keep.len() as u64);
        for &k in &self.keep {
            w.put_u8(k as u8);
        }
        w.put_varint(self.read_cols.len() as u64);
        for &c in &self.read_cols {
            w.put_varint(c as u64);
        }
        if let Some(agg) = &self.agg {
            w.put_varint(agg.group_by.len() as u64);
            for &g in &agg.group_by {
                w.put_varint(g as u64);
            }
            w.put_varint(agg.aggs.len() as u64);
            for spec in &agg.aggs {
                let (tag, col) = agg_wire(spec)
                    .ok_or_else(|| EonError::Internal("aggregate is not pushable".into()))?;
                w.put_u8(tag);
                w.put_varint(col as u64);
            }
            w.put_varint(agg.max_groups);
        }
        Ok(w.into_bytes())
    }

    pub fn decode(buf: &[u8]) -> Result<SelectRequest> {
        let mut r = Reader::new(buf);
        let version = r.get_u8()?;
        if version != WIRE_VERSION {
            return Err(EonError::Corrupt(format!(
                "select request version {version}, engine speaks {WIRE_VERSION}"
            )));
        }
        let has_agg = r.get_u8()? != 0;
        let width = r.get_varint()? as usize;
        let predicate = decode_predicate(&mut r, 0)?;
        let nblocks = r.get_varint()? as usize;
        if nblocks > r.remaining() {
            return Err(EonError::Corrupt("keep mask exceeds buffer".into()));
        }
        let keep = (0..nblocks)
            .map(|_| Ok(r.get_u8()? != 0))
            .collect::<Result<Vec<_>>>()?;
        let read_cols = decode_index_list(&mut r)?;
        let agg = if has_agg {
            let group_by = decode_index_list(&mut r)?;
            let naggs = r.get_varint()? as usize;
            if naggs > r.remaining() {
                return Err(EonError::Corrupt("aggregate list exceeds buffer".into()));
            }
            let aggs = (0..naggs)
                .map(|_| {
                    let tag = r.get_u8()?;
                    let col = r.get_varint()? as usize;
                    agg_from_wire(tag, col)
                })
                .collect::<Result<Vec<_>>>()?;
            Some(AggRequest {
                group_by,
                aggs,
                max_groups: r.get_varint()?,
            })
        } else {
            None
        };
        Ok(SelectRequest {
            width,
            predicate,
            keep,
            read_cols,
            agg,
        })
    }
}

// ---------------------------------------------------------------------
// Response
// ---------------------------------------------------------------------

/// Survivors of one block, rows-mode.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRows {
    /// Block index within the container (request numbering).
    pub block: usize,
    /// Surviving in-block row indices, ascending.
    pub rows: Vec<usize>,
    /// One vector per requested column (request `read_cols` order),
    /// parallel to `rows`.
    pub cols: Vec<Vec<Value>>,
}

/// What comes back over the wire from a select.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectResponse {
    /// Rows mode: per-block survivor indices plus gathered values.
    /// Blocks with no survivors are simply absent.
    Rows(Vec<BlockRows>),
    /// Agg mode: this container's groups, already merged and sorted by
    /// key — exactly what [`aggregate_partial`] returns.
    Partials(Partials),
}

fn encode_state(w: &mut Writer, s: &AggState) -> Result<()> {
    match s {
        AggState::Sum { acc } => {
            w.put_u8(0);
            w.put_value(acc);
        }
        AggState::Count { n } => {
            w.put_u8(1);
            w.put_signed_varint(*n);
        }
        AggState::Min { acc } => {
            w.put_u8(2);
            w.put_value(acc);
        }
        AggState::Max { acc } => {
            w.put_u8(3);
            w.put_value(acc);
        }
        AggState::Avg { .. } | AggState::Distinct { .. } => {
            return Err(EonError::Internal(
                "avg/distinct states never cross the select wire".into(),
            ))
        }
    }
    Ok(())
}

fn decode_state(r: &mut Reader) -> Result<AggState> {
    Ok(match r.get_u8()? {
        0 => AggState::Sum { acc: r.get_value()? },
        1 => AggState::Count {
            n: r.get_signed_varint()?,
        },
        2 => AggState::Min { acc: r.get_value()? },
        3 => AggState::Max { acc: r.get_value()? },
        t => return Err(EonError::Corrupt(format!("bad agg state tag {t}"))),
    })
}

impl SelectResponse {
    pub fn encode(&self) -> Result<Bytes> {
        let mut w = Writer::new();
        w.put_u8(WIRE_VERSION);
        match self {
            SelectResponse::Rows(blocks) => {
                w.put_u8(0);
                w.put_varint(blocks.len() as u64);
                for b in blocks {
                    w.put_varint(b.block as u64);
                    w.put_varint(b.rows.len() as u64);
                    // Survivor indices ascend: delta-encode them.
                    let mut prev = 0u64;
                    for &r in &b.rows {
                        w.put_varint(r as u64 - prev);
                        prev = r as u64;
                    }
                    w.put_varint(b.cols.len() as u64);
                    for col in &b.cols {
                        for v in col {
                            w.put_value(v);
                        }
                    }
                }
            }
            SelectResponse::Partials(groups) => {
                w.put_u8(1);
                w.put_varint(groups.len() as u64);
                for g in groups {
                    w.put_varint(g.key.len() as u64);
                    for v in &g.key {
                        w.put_value(v);
                    }
                    w.put_varint(g.states.len() as u64);
                    for s in &g.states {
                        encode_state(&mut w, s)?;
                    }
                }
            }
        }
        Ok(w.into_bytes())
    }

    pub fn decode(buf: &[u8]) -> Result<SelectResponse> {
        let mut r = Reader::new(buf);
        let version = r.get_u8()?;
        if version != WIRE_VERSION {
            return Err(EonError::Corrupt(format!(
                "select response version {version}, caller speaks {WIRE_VERSION}"
            )));
        }
        Ok(match r.get_u8()? {
            0 => {
                let nblocks = r.get_varint()? as usize;
                if nblocks > r.remaining() {
                    return Err(EonError::Corrupt("block list exceeds buffer".into()));
                }
                let mut blocks = Vec::with_capacity(nblocks);
                for _ in 0..nblocks {
                    let block = r.get_varint()? as usize;
                    let nrows = r.get_varint()? as usize;
                    if nrows > r.remaining() {
                        return Err(EonError::Corrupt("row list exceeds buffer".into()));
                    }
                    let mut rows = Vec::with_capacity(nrows);
                    let mut acc = 0u64;
                    for i in 0..nrows {
                        let d = r.get_varint()?;
                        acc = if i == 0 { d } else { acc + d };
                        rows.push(acc as usize);
                    }
                    let ncols = r.get_varint()? as usize;
                    if ncols > 100_000 {
                        return Err(EonError::Corrupt("absurd column count".into()));
                    }
                    let mut cols = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        let vals = (0..nrows)
                            .map(|_| r.get_value())
                            .collect::<Result<Vec<_>>>()?;
                        cols.push(vals);
                    }
                    blocks.push(BlockRows { block, rows, cols });
                }
                SelectResponse::Rows(blocks)
            }
            1 => {
                let ngroups = r.get_varint()? as usize;
                if ngroups > r.remaining() {
                    return Err(EonError::Corrupt("group list exceeds buffer".into()));
                }
                let mut groups = Vec::with_capacity(ngroups);
                for _ in 0..ngroups {
                    let nkey = r.get_varint()? as usize;
                    if nkey > r.remaining() {
                        return Err(EonError::Corrupt("group key exceeds buffer".into()));
                    }
                    let key = (0..nkey).map(|_| r.get_value()).collect::<Result<Vec<_>>>()?;
                    let nstates = r.get_varint()? as usize;
                    if nstates > r.remaining() {
                        return Err(EonError::Corrupt("state list exceeds buffer".into()));
                    }
                    let states = (0..nstates)
                        .map(|_| decode_state(&mut r))
                        .collect::<Result<Vec<_>>>()?;
                    groups.push(PartialGroup { key, states });
                }
                SelectResponse::Partials(groups)
            }
            t => return Err(EonError::Corrupt(format!("bad response tag {t}"))),
        })
    }
}

// ---------------------------------------------------------------------
// Selectivity estimation (the crossover policy's input)
// ---------------------------------------------------------------------

/// Estimated fraction of a block's rows a predicate keeps, from footer
/// min/max stats alone. Integer ranges get a uniform-distribution
/// estimate; anything the stats can't bound is assumed to keep
/// everything (conservative: overestimating selectivity only suppresses
/// pushdown, never correctness). Deterministic — same footer, same
/// estimate, every run.
fn block_selectivity(p: &Predicate, footer: &RosFooter, b: usize) -> f64 {
    match p {
        Predicate::True => 1.0,
        Predicate::Cmp { col, op, lit } => {
            let Some(meta) = footer.columns.get(*col).and_then(|c| c.blocks.get(b)) else {
                return 1.0;
            };
            let (Value::Int(mn), Value::Int(mx), Value::Int(v)) = (&meta.min, &meta.max, lit)
            else {
                return 1.0;
            };
            let (mn, mx, v) = (*mn as i128, *mx as i128, *v as i128);
            if mx < mn {
                return 1.0; // all-null or empty block: stats say nothing
            }
            let span = (mx - mn + 1) as f64;
            let frac = |n: i128| (n.max(0) as f64 / span).clamp(0.0, 1.0);
            match op {
                CmpOp::Eq => {
                    if v < mn || v > mx {
                        0.0
                    } else {
                        1.0 / span
                    }
                }
                CmpOp::Ne => 1.0 - if v < mn || v > mx { 0.0 } else { 1.0 / span },
                CmpOp::Lt => frac(v - mn),
                CmpOp::Le => frac(v - mn + 1),
                CmpOp::Gt => frac(mx - v),
                CmpOp::Ge => frac(mx - v + 1),
            }
        }
        // Null fractions aren't in the stats; split the difference.
        Predicate::IsNull(_) => 0.5,
        Predicate::IsNotNull(_) => 1.0,
        Predicate::And(ps) => ps
            .iter()
            .map(|q| block_selectivity(q, footer, b))
            .product::<f64>()
            .clamp(0.0, 1.0),
        Predicate::Or(ps) => ps
            .iter()
            .map(|q| block_selectivity(q, footer, b))
            .sum::<f64>()
            .clamp(0.0, 1.0),
    }
}

/// Row-weighted selectivity estimate over the unpruned blocks of a
/// container. `0.0` when nothing survives pruning.
pub fn estimate_selectivity(p: &Predicate, footer: &RosFooter, keep: &[bool]) -> f64 {
    let Some(first) = footer.columns.first() else {
        return 1.0;
    };
    let mut total = 0u64;
    let mut est = 0.0;
    for (b, bm) in first.blocks.iter().enumerate() {
        if !keep.get(b).copied().unwrap_or(false) {
            continue;
        }
        total += bm.rows;
        est += bm.rows as f64 * block_selectivity(p, footer, b);
    }
    if total == 0 {
        0.0
    } else {
        est / total as f64
    }
}

/// Bytes a plain-GET scan would fetch for `cols` under `keep` (ignoring
/// coalescing gaps): the "scanned" side of the crossover decision and
/// the baseline for bytes-saved accounting.
pub fn kept_bytes(footer: &RosFooter, keep: &[bool], cols: &[usize]) -> u64 {
    cols.iter()
        .filter_map(|&c| footer.columns.get(c))
        .map(|col| {
            col.blocks
                .iter()
                .enumerate()
                .filter(|(b, _)| keep.get(*b).copied().unwrap_or(false))
                .map(|(_, bm)| bm.len)
                .sum::<u64>()
        })
        .sum()
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// A read-only filesystem over one in-memory object, so the engine can
/// reuse `RosReader` verbatim. Counts bytes served — that count is the
/// "bytes scanned" the store bills for.
struct SingleObjectFs {
    object: Bytes,
    read_bytes: AtomicU64,
}

impl SingleObjectFs {
    fn new(object: Bytes) -> Self {
        SingleObjectFs {
            object,
            read_bytes: AtomicU64::new(0),
        }
    }

    fn scanned(&self) -> u64 {
        self.read_bytes.load(Ordering::Relaxed)
    }
}

impl FileSystem for SingleObjectFs {
    fn write(&self, _path: &str, _data: Bytes) -> Result<()> {
        Err(EonError::Storage("select engine object is read-only".into()))
    }

    fn read(&self, _path: &str) -> Result<Bytes> {
        self.read_bytes
            .fetch_add(self.object.len() as u64, Ordering::Relaxed);
        Ok(self.object.clone())
    }

    fn read_range(&self, _path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let start = (offset as usize).min(self.object.len());
        let end = ((offset + len) as usize).min(self.object.len());
        self.read_bytes
            .fetch_add((end - start) as u64, Ordering::Relaxed);
        Ok(self.object.slice(start..end))
    }

    fn size(&self, _path: &str) -> Result<u64> {
        Ok(self.object.len() as u64)
    }

    fn list(&self, _prefix: &str) -> Result<Vec<String>> {
        Ok(Vec::new())
    }

    fn delete(&self, _path: &str) -> Result<()> {
        Err(EonError::Storage("select engine object is read-only".into()))
    }

    fn stats(&self) -> FsStats {
        FsStats::default()
    }

    fn kind(&self) -> &'static str {
        "select-object"
    }
}

/// The container-format-aware compute installed into the simulated
/// store. Stateless; one instance serves every node's requests.
pub struct RosSelectEngine;

const OBJECT_KEY: &str = "object";

impl RosSelectEngine {
    fn run(&self, object: &Bytes, request: &[u8]) -> Result<Option<SelectOutput>> {
        let req = SelectRequest::decode(request)?;
        let fs = SingleObjectFs::new(object.clone());
        let reader = RosReader::open(&fs, OBJECT_KEY)?;
        let footer = reader.footer();
        let present = footer.columns.len();
        let nblocks = footer
            .columns
            .first()
            .map(|col| col.blocks.len())
            .unwrap_or(0);
        if req.keep.len() != nblocks {
            return Err(EonError::Query(format!(
                "select keep mask has {} entries for {nblocks} blocks",
                req.keep.len()
            )));
        }
        // Requests referencing columns this container lacks (or a row
        // width too small for the predicate) are declined, not errors:
        // the node falls back to the local path, which knows how to
        // materialize table defaults.
        if req.read_cols.iter().any(|&c| c >= present || c >= req.width) {
            return Ok(None);
        }
        if predicate_cols(&req.predicate).iter().any(|&c| c >= req.width) {
            return Ok(None);
        }

        let mut keep = req.keep.clone();
        let mut rstats = ReadStats::default();
        let mut col_blocks: HashMap<usize, Vec<Option<EncodedBlock>>> = HashMap::new();
        // Predicate columns outside `read_cols` evaluate as Null —
        // identical to the node-local late-materialization path.
        let pcols: Vec<usize> = predicate_cols(&req.predicate)
            .into_iter()
            .filter(|c| req.read_cols.contains(c))
            .collect();
        for &col in &pcols {
            col_blocks.insert(
                col,
                reader.read_column_blocks_encoded(&fs, col, &keep, None, &mut rstats)?,
            );
        }
        let null = Value::Null;
        let mut survivors: Vec<Option<Vec<usize>>> = vec![None; nblocks];
        for b in 0..nblocks {
            if !keep[b] {
                continue;
            }
            let rows_in_block = footer.columns[0].blocks[b].rows as usize;
            let cols_view: Vec<BlockCol> = (0..req.width)
                .map(|col| match col_blocks.get(&col) {
                    Some(blocks) => match &blocks[b] {
                        Some(view) => view.as_block_col(),
                        None => BlockCol::Const(&null),
                    },
                    None => BlockCol::Const(&null),
                })
                .collect();
            let sel = req.predicate.eval_block(&cols_view, rows_in_block);
            let surv: Vec<usize> = sel
                .iter()
                .enumerate()
                .filter_map(|(r, &s)| s.then_some(r))
                .collect();
            if surv.is_empty() {
                keep[b] = false;
            } else {
                survivors[b] = Some(surv);
            }
        }
        // Remaining requested columns, under the refined keep mask (a
        // block every row of which failed the predicate is never read).
        for &col in &req.read_cols {
            if let std::collections::hash_map::Entry::Vacant(e) = col_blocks.entry(col) {
                e.insert(reader.read_column_blocks_encoded(&fs, col, &keep, None, &mut rstats)?);
            }
        }

        let response = match &req.agg {
            None => {
                let mut blocks_out = Vec::new();
                for b in 0..nblocks {
                    if !keep[b] {
                        continue;
                    }
                    let Some(surv) = survivors[b].take() else {
                        continue;
                    };
                    let cols: Vec<Vec<Value>> = req
                        .read_cols
                        .iter()
                        .map(|col| match &col_blocks[col][b] {
                            Some(view) => view.gather(&surv),
                            None => vec![Value::Null; surv.len()],
                        })
                        .collect();
                    blocks_out.push(BlockRows {
                        block: b,
                        rows: surv,
                        cols,
                    });
                }
                SelectResponse::Rows(blocks_out)
            }
            Some(aggreq) => {
                // Materialize survivor rows width-wide (Null outside
                // `read_cols`) — the same rows the node-local scan
                // would feed `aggregate_partial`, so states match
                // bit-for-bit.
                let mut rows: Vec<Vec<Value>> = Vec::new();
                for b in 0..nblocks {
                    if !keep[b] {
                        continue;
                    }
                    let Some(surv) = survivors[b].take() else {
                        continue;
                    };
                    let mut gathered: HashMap<usize, Vec<Value>> = HashMap::new();
                    for &col in &req.read_cols {
                        if let Some(view) = &col_blocks[&col][b] {
                            gathered.insert(col, view.gather(&surv));
                        }
                    }
                    for j in 0..surv.len() {
                        let mut row = vec![Value::Null; req.width];
                        for &col in &req.read_cols {
                            if let Some(vals) = gathered.get_mut(&col) {
                                row[col] = std::mem::replace(&mut vals[j], Value::Null);
                            }
                        }
                        rows.push(row);
                    }
                }
                if aggreq
                    .group_by
                    .iter()
                    .chain(aggreq.aggs.iter().filter_map(|s| match &s.expr {
                        Expr::Col(c) => Some(c),
                        _ => None,
                    }))
                    .any(|&c| c >= req.width)
                {
                    return Ok(None);
                }
                let partials = aggregate_partial(&rows, &aggreq.group_by, &aggreq.aggs)?;
                if partials.len() as u64 > aggreq.max_groups {
                    return Ok(None);
                }
                // Float sums are order-sensitive: merging per-container
                // accumulators is not bit-identical to one sequential
                // fold. Decline; the node re-scans locally.
                let float_sum = partials.iter().any(|g| {
                    g.states
                        .iter()
                        .any(|s| matches!(s, AggState::Sum { acc: Value::Float(_) }))
                });
                if float_sum {
                    return Ok(None);
                }
                SelectResponse::Partials(partials)
            }
        };
        Ok(Some(SelectOutput {
            response: response.encode()?,
            scanned_bytes: fs.scanned(),
        }))
    }
}

impl SelectEngine for RosSelectEngine {
    fn select(&self, object: &Bytes, request: &[u8]) -> Result<Option<SelectOutput>> {
        self.run(object, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_columnar::RosWriter;

    fn container(cols: &[Vec<Value>], block_rows: usize) -> Bytes {
        let (bytes, _) = RosWriter::with_block_rows(block_rows).encode(cols).unwrap();
        bytes
    }

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&i| Value::Int(i)).collect()
    }

    fn pred_gt(col: usize, v: i64) -> Predicate {
        Predicate::Cmp {
            col,
            op: CmpOp::Gt,
            lit: Value::Int(v),
        }
    }

    #[test]
    fn request_roundtrip() {
        let req = SelectRequest {
            width: 3,
            predicate: Predicate::And(vec![
                pred_gt(0, 5),
                Predicate::Or(vec![Predicate::IsNull(1), pred_gt(2, -1)]),
            ]),
            keep: vec![true, false, true],
            read_cols: vec![0, 2],
            agg: Some(AggRequest {
                group_by: vec![0],
                aggs: vec![AggSpec::sum(Expr::col(2)), AggSpec::count_star()],
                max_groups: 64,
            }),
        };
        let got = SelectRequest::decode(&req.encode().unwrap()).unwrap();
        assert_eq!(got, req);
    }

    #[test]
    fn response_roundtrip_preserves_float_bits() {
        let resp = SelectResponse::Rows(vec![BlockRows {
            block: 2,
            rows: vec![0, 3, 9],
            cols: vec![
                vec![Value::Float(f64::NAN), Value::Float(-0.0), Value::Int(7)],
                vec![Value::Null, Value::Str("x".into()), Value::Bool(true)],
            ],
        }]);
        let got = SelectResponse::decode(&resp.encode().unwrap()).unwrap();
        // Debug formatting distinguishes NaN payloads and -0.0.
        assert_eq!(format!("{got:?}"), format!("{resp:?}"));

        let parts = SelectResponse::Partials(vec![PartialGroup {
            key: vec![Value::Int(1)],
            states: vec![
                AggState::Sum { acc: Value::Int(-9) },
                AggState::Count { n: 4 },
                AggState::Min { acc: Value::Null },
                AggState::Max {
                    acc: Value::Str("z".into()),
                },
            ],
        }]);
        let got = SelectResponse::decode(&parts.encode().unwrap()).unwrap();
        assert_eq!(got, parts);
    }

    #[test]
    fn rows_mode_matches_local_filter() {
        let col0: Vec<i64> = (0..40).collect();
        let col1: Vec<i64> = (0..40).map(|i| i * 10).collect();
        let obj = container(&[ints(&col0), ints(&col1)], 8);
        let req = SelectRequest {
            width: 2,
            predicate: pred_gt(0, 33),
            keep: vec![true; 5],
            read_cols: vec![0, 1],
            agg: None,
        };
        let out = RosSelectEngine
            .select(&obj, &req.encode().unwrap())
            .unwrap()
            .unwrap();
        assert!(out.scanned_bytes > 0 && out.scanned_bytes <= obj.len() as u64);
        let SelectResponse::Rows(blocks) = SelectResponse::decode(&out.response).unwrap() else {
            panic!("expected rows response");
        };
        // Rows 34..40 live in block 4 (rows 32..40) at offsets 2..8.
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].block, 4);
        assert_eq!(blocks[0].rows, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(blocks[0].cols[1], ints(&[340, 350, 360, 370, 380, 390]));
    }

    #[test]
    fn pruned_blocks_are_never_scanned() {
        let col0: Vec<i64> = (0..40).collect();
        let obj = container(&[ints(&col0)], 8);
        let all = SelectRequest {
            width: 1,
            predicate: Predicate::IsNotNull(0),
            keep: vec![true; 5],
            read_cols: vec![0],
            agg: None,
        };
        let one = SelectRequest {
            keep: vec![true, false, false, false, false],
            ..all.clone()
        };
        let full = RosSelectEngine.select(&obj, &all.encode().unwrap()).unwrap().unwrap();
        let part = RosSelectEngine.select(&obj, &one.encode().unwrap()).unwrap().unwrap();
        assert!(part.scanned_bytes < full.scanned_bytes);
        let SelectResponse::Rows(blocks) = SelectResponse::decode(&part.response).unwrap() else {
            panic!();
        };
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].rows.len(), 8);
    }

    #[test]
    fn agg_mode_matches_aggregate_partial() {
        let groups: Vec<i64> = (0..30).map(|i| i % 3).collect();
        let vals: Vec<i64> = (0..30).map(|i| i * 7 - 50).collect();
        let obj = container(&[ints(&groups), ints(&vals)], 8);
        let aggs = vec![
            AggSpec::sum(Expr::col(1)),
            AggSpec::count_star(),
            AggSpec::min(Expr::col(1)),
            AggSpec::max(Expr::col(1)),
        ];
        let req = SelectRequest {
            width: 2,
            predicate: pred_gt(1, -20),
            keep: vec![true; 4],
            read_cols: vec![0, 1],
            agg: Some(AggRequest {
                group_by: vec![0],
                aggs: aggs.clone(),
                max_groups: 64,
            }),
        };
        let out = RosSelectEngine
            .select(&obj, &req.encode().unwrap())
            .unwrap()
            .unwrap();
        let SelectResponse::Partials(got) = SelectResponse::decode(&out.response).unwrap() else {
            panic!("expected partials");
        };
        // Reference: the local fold over the same filtered rows.
        let rows: Vec<Vec<Value>> = groups
            .iter()
            .zip(&vals)
            .filter(|(_, &v)| v > -20)
            .map(|(&g, &v)| vec![Value::Int(g), Value::Int(v)])
            .collect();
        let want = aggregate_partial(&rows, &[0], &aggs).unwrap();
        assert_eq!(format!("{got:?}"), format!("{want:?}"));
    }

    #[test]
    fn float_sum_declines() {
        let col: Vec<Value> = (0..10).map(|i| Value::Float(i as f64 * 0.1)).collect();
        let obj = container(&[col], 4);
        let req = SelectRequest {
            width: 1,
            predicate: Predicate::True,
            keep: vec![true; 3],
            read_cols: vec![0],
            agg: Some(AggRequest {
                group_by: vec![],
                aggs: vec![AggSpec::sum(Expr::col(0))],
                max_groups: 64,
            }),
        };
        assert!(RosSelectEngine
            .select(&obj, &req.encode().unwrap())
            .unwrap()
            .is_none());
        // MIN over the same floats is order-insensitive: answered.
        let req_min = SelectRequest {
            agg: Some(AggRequest {
                group_by: vec![],
                aggs: vec![AggSpec::min(Expr::col(0))],
                max_groups: 64,
            }),
            ..req
        };
        assert!(RosSelectEngine
            .select(&obj, &req_min.encode().unwrap())
            .unwrap()
            .is_some());
    }

    #[test]
    fn group_cardinality_cap_declines() {
        let col: Vec<i64> = (0..50).collect(); // 50 distinct groups
        let obj = container(&[ints(&col)], 8);
        let req = |cap: u64| SelectRequest {
            width: 1,
            predicate: Predicate::True,
            keep: vec![true; 7],
            read_cols: vec![0],
            agg: Some(AggRequest {
                group_by: vec![0],
                aggs: vec![AggSpec::count_star()],
                max_groups: cap,
            }),
        };
        assert!(RosSelectEngine
            .select(&obj, &req(10).encode().unwrap())
            .unwrap()
            .is_none());
        assert!(RosSelectEngine
            .select(&obj, &req(64).encode().unwrap())
            .unwrap()
            .is_some());
    }

    #[test]
    fn missing_column_declines_instead_of_erroring() {
        let obj = container(&[ints(&[1, 2, 3])], 4);
        let req = SelectRequest {
            width: 2,
            predicate: pred_gt(0, 1),
            keep: vec![true],
            read_cols: vec![0, 1], // column 1 not in the container
            agg: None,
        };
        assert!(RosSelectEngine
            .select(&obj, &req.encode().unwrap())
            .unwrap()
            .is_none());
    }

    #[test]
    fn corrupt_object_is_an_error() {
        let req = SelectRequest {
            width: 1,
            predicate: Predicate::True,
            keep: vec![],
            read_cols: vec![0],
            agg: None,
        };
        let garbage = Bytes::from_static(b"not a ros container at all....");
        assert!(RosSelectEngine
            .select(&garbage, &req.encode().unwrap())
            .is_err());
    }

    #[test]
    fn selectivity_estimates_are_sane() {
        let col: Vec<i64> = (0..100).collect();
        let (_, footer) = RosWriter::with_block_rows(10).encode(&[ints(&col)]).unwrap();
        let keep = vec![true; 10];
        let sel = |p: &Predicate| estimate_selectivity(p, &footer, &keep);
        assert!(sel(&pred_gt(0, 89)) < 0.15);
        assert!(sel(&pred_gt(0, 9)) > 0.8);
        assert_eq!(sel(&Predicate::True), 1.0);
        let eq = Predicate::Cmp {
            col: 0,
            op: CmpOp::Eq,
            lit: Value::Int(42),
        };
        assert!(sel(&eq) < 0.15);
        // Unknown (string literal) stays conservative.
        let s = Predicate::Cmp {
            col: 0,
            op: CmpOp::Eq,
            lit: Value::Str("x".into()),
        };
        assert_eq!(sel(&s), 1.0);
    }

    #[test]
    fn kept_bytes_counts_only_kept_blocks() {
        let col: Vec<i64> = (0..40).collect();
        let (_, footer) = RosWriter::with_block_rows(10).encode(&[ints(&col)]).unwrap();
        let all = kept_bytes(&footer, &[true; 4], &[0]);
        let half = kept_bytes(&footer, &[true, false, true, false], &[0]);
        assert!(all > 0 && half < all);
    }
}
