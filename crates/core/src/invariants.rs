//! Crash-consistency invariants (DESIGN.md "Fault model").
//!
//! After an injected crash plus restart/revive, three things must hold
//! — they are the operational content of §3.5 ("committed transactions
//! never lose files"), snapshot isolation (uncommitted work is
//! invisible), and §6.5 (reference-counted deletion reclaims every
//! orphan):
//!
//! 1. **Exactness** — every committed table answers a full scan with
//!    exactly its model rows: nothing lost, nothing duplicated, and no
//!    uncommitted rows leaking in.
//! 2. **No dangling references** — every container and delete-vector
//!    key in the catalog exists on shared storage.
//! 3. **No leaks** — after a leak scan, every `data/` object on shared
//!    storage is referenced by the catalog or parked with the reaper;
//!    crash-orphaned uploads are gone.
//!
//! The chaos harness (`eon-bench::chaos`) drives a seeded crash
//! schedule and calls [`check_crash_invariants`] after each recovery.

use eon_exec::{Plan, ScanSpec};
use eon_types::{EonError, Result, Value};

use crate::db::EonDb;

/// What the database *should* contain for one table: the rows of every
/// transaction whose commit returned success. Order-insensitive.
#[derive(Debug, Clone, Default)]
pub struct TableModel {
    pub name: String,
    pub rows: Vec<Vec<Value>>,
}

impl TableModel {
    pub fn new(name: &str) -> Self {
        TableModel {
            name: name.to_owned(),
            rows: Vec::new(),
        }
    }
}

/// Evidence from a passing invariant check.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// Orphaned files the leak scan reclaimed.
    pub reclaimed: Vec<String>,
    /// `data/` objects on shared storage after the scan.
    pub live_objects: usize,
}

/// Verify the crash-consistency invariants against `models`. Returns
/// the report on success, the first violated invariant as an error.
pub fn check_crash_invariants(db: &EonDb, models: &[TableModel]) -> Result<InvariantReport> {
    // 1. Exactness: committed data answers exactly; uncommitted loads
    //    are invisible. Sort both sides — COPY order is not row order.
    for model in models {
        let plan = Plan::scan(ScanSpec::new(&model.name));
        let mut got = db.query(&plan)?;
        got.sort();
        let mut want = model.rows.clone();
        want.sort();
        if got != want {
            return Err(EonError::Internal(format!(
                "exactness violated for {}: got {} rows, want {}",
                model.name,
                got.len(),
                want.len()
            )));
        }
    }

    // 2. No dangling references: every catalog key is durable.
    let snap = db.snapshot()?;
    for c in snap.containers.values() {
        if !db.shared().exists(&c.key)? {
            return Err(EonError::Internal(format!(
                "container {} references missing object {}",
                c.oid, c.key
            )));
        }
    }
    for dv in snap.delete_vectors.values() {
        if !db.shared().exists(&dv.key)? {
            return Err(EonError::Internal(format!(
                "delete vector {} references missing object {}",
                dv.oid, dv.key
            )));
        }
    }

    // 3. No leaks: reclaim crash orphans, then account for every
    //    remaining data object.
    let reclaimed = db.leak_scan()?;
    let mut referenced: std::collections::HashSet<String> = snap
        .containers
        .values()
        .map(|c| c.key.clone())
        .chain(snap.delete_vectors.values().map(|d| d.key.clone()))
        .collect();
    referenced.extend(db.reaper.pending_keys());
    let survivors = db.shared().list("data/")?;
    for key in &survivors {
        if !referenced.contains(key) {
            // Only a live node's in-flight uploads may escape the scan.
            let live = db
                .membership()
                .up_nodes()
                .iter()
                .any(|n| eon_storage::StorageId::key_has_instance(key, n.instance()));
            if !live {
                return Err(EonError::Internal(format!(
                    "leaked object survived the scan: {key}"
                )));
            }
        }
    }
    Ok(InvariantReport {
        reclaimed,
        live_objects: survivors.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_columnar::Projection;
    use eon_storage::MemFs;
    use eon_types::schema;
    use std::sync::Arc;

    fn db_and_model() -> (Arc<EonDb>, TableModel) {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("v", Int)];
        db.create_table(
            "t",
            s.clone(),
            vec![Projection::super_projection("p", &s, &[0], &[0])],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
            .collect();
        db.copy_into("t", rows.clone()).unwrap();
        let mut model = TableModel::new("t");
        model.rows = rows;
        (db, model)
    }

    #[test]
    fn healthy_database_passes() {
        let (db, model) = db_and_model();
        let report = check_crash_invariants(&db, &[model]).unwrap();
        assert!(report.reclaimed.is_empty());
        assert!(report.live_objects > 0);
    }

    #[test]
    fn wrong_model_fails_exactness() {
        let (db, mut model) = db_and_model();
        model.rows.pop();
        assert!(check_crash_invariants(&db, &[model]).is_err());
    }

    #[test]
    fn orphan_from_dead_instance_is_reclaimed() {
        let (db, model) = db_and_model();
        db.shared()
            .write("data/ab/00000000000000000000000000000cafe_0000000000000001", bytes::Bytes::from_static(b"orphan"))
            .unwrap();
        let report = check_crash_invariants(&db, &[model]).unwrap();
        assert_eq!(report.reclaimed.len(), 1);
    }
}
