//! The Eon [`TableProvider`]: scans that resolve through the catalog
//! snapshot, read container blocks through the node's cache, prune by
//! min/max statistics at container and block level (§2.1), apply
//! delete vectors, and honor session shard assignments (§4) and crunch
//! slices (§4.4).
//!
//! Scans run as a *pipeline* (see DESIGN.md "Scan pipeline"): the
//! per-shard container list fans out across a bounded per-node worker
//! pool so shared-storage latency on one container overlaps decode and
//! filter compute on another; block ranges are coalesced into fewer
//! ranged reads; and predicates evaluate columnar-wise into selection
//! vectors so non-predicate columns are fetched only for blocks with
//! surviving rows (late materialization). Results merge in container
//! order, so output is identical to a serial scan.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use eon_cache::CacheMode;
use eon_catalog::{CatalogState, ContainerMeta, Table};
use eon_cluster::NodeRuntime;
use eon_columnar::pruning::ColumnStats;
use eon_columnar::{BlockCol, DeleteVector, EncodedBlock, Predicate, Projection, ReadStats, RosReader};
use eon_exec::agg::{aggregate_partial, merge_partials, AggState, Partials};
use eon_exec::crunch::CrunchSlice;
use eon_exec::{AggSpec, Expr, ScanSpec, TableProvider};
use eon_obs::{Counter, Histogram, QueryProfile, Registry};
use eon_types::{EonError, Oid, Result, ShardId, Value};
use parking_lot::Mutex;

use crate::pushdown::{
    agg_pushable, estimate_selectivity, kept_bytes, predicate_cols, AggRequest, SelectRequest,
    SelectResponse,
};

/// Default coalescing gap: fetch up to this many dead bytes between
/// two surviving blocks rather than pay a second request round-trip.
pub const DEFAULT_COALESCE_GAP: u64 = 64 * 1024;

/// One container's scan output: `(position, row)` pairs in position
/// order (position is 0 when the caller didn't ask for it).
type PosRows = Vec<(u64, Vec<Value>)>;

/// Scan-pipeline tuning, carried per session (built from `EonConfig`
/// by the coordinator; defaults are serial + full optimisation, which
/// keeps DML/mergeout scans single-threaded).
#[derive(Clone)]
pub struct ScanOptions {
    /// Container-scan worker threads per node; 1 = serial. The
    /// coordinator clamps this to the node's execution-slot budget
    /// (§4.2) so a scan can't out-parallelize its admission.
    pub workers: usize,
    /// Coalesce ranged reads whose gap is at most this many bytes;
    /// `None` issues one read per surviving block.
    pub coalesce_gap: Option<u64>,
    /// Evaluate predicates into per-block selection vectors and skip
    /// fetching non-predicate columns for blocks with no survivors.
    /// `false` falls back to materialize-then-`eval_row`.
    pub late_materialization: bool,
    /// Compression-aware execution (DESIGN.md "Compression-aware
    /// execution"): serve blocks as [`EncodedBlock`] views so
    /// predicates evaluate once per RLE run / dictionary entry and
    /// survivors are gathered without materializing the block. `false`
    /// forces the decode-first path (every block decoded to rows up
    /// front) — output is identical either way.
    pub encoded_exec: bool,
    /// S3-Select-style pushdown (DESIGN.md "Pushdown execution"): issue
    /// `select` requests against shared storage for eligible scans
    /// instead of fetching blocks with plain GETs. Output is identical
    /// either way; the knobs below steer the cost crossover.
    pub pushdown: bool,
    /// Push a rows-mode select only when the footer-stats selectivity
    /// estimate is at or below this fraction.
    pub pushdown_max_selectivity: f64,
    /// Push only when the plain-GET path would fetch at least this many
    /// bytes from the container.
    pub pushdown_min_bytes: u64,
    /// Partial-aggregate pushdown group-cardinality cap; the store
    /// declines selects producing more groups than this.
    pub pushdown_max_groups: u64,
    /// Registry scan metrics land in.
    pub obs: Registry,
    /// Per-query profile for scan spans, when one is being collected.
    pub profile: Option<QueryProfile>,
    /// Session cancellation, checked at every scan-task claim so a
    /// cancelled session stops fetching instead of finishing the scan.
    pub cancel: Option<eon_types::CancelToken>,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            workers: 1,
            coalesce_gap: Some(DEFAULT_COALESCE_GAP),
            late_materialization: true,
            encoded_exec: true,
            pushdown: false,
            pushdown_max_selectivity: 0.25,
            pushdown_min_bytes: 32 * 1024,
            pushdown_max_groups: 64,
            obs: Registry::new(),
            profile: None,
            cancel: None,
        }
    }
}

/// Registry handles for one node's scan pipeline. Counters are
/// deterministic functions of the workload (which blocks were pruned,
/// which bytes fetched); only the queue-wait histogram is wall-clock.
struct ScanMetrics {
    pool_tasks: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    blocks_pruned: Arc<Counter>,
    blocks_late_skipped: Arc<Counter>,
    encoded_blocks: Arc<Counter>,
    rows_short_circuited: Arc<Counter>,
    read_requests: Arc<Counter>,
    requests_saved: Arc<Counter>,
    coalesced_bytes: Arc<Counter>,
    gap_bytes: Arc<Counter>,
    waste_bytes: Arc<Counter>,
    pushdown_selects: Arc<Counter>,
    pushdown_fallbacks: Arc<Counter>,
    pushdown_bytes_saved: Arc<Counter>,
    /// Per-scan tallies (this struct is built fresh per scan call) that
    /// feed the query profile's pushdown annotations.
    profile_selects: AtomicUsize,
    profile_saved: AtomicUsize,
}

impl ScanMetrics {
    fn register(registry: &Registry, node: &str) -> Self {
        let labels: &[(&str, &str)] = &[("node", node), ("subsystem", "scan")];
        ScanMetrics {
            pool_tasks: registry.counter("scan_pool_tasks_total", labels),
            queue_wait: registry.timing_histogram("scan_pool_queue_wait_us", labels),
            blocks_pruned: registry.counter("scan_blocks_pruned_total", labels),
            blocks_late_skipped: registry.counter("scan_blocks_late_skipped_total", labels),
            encoded_blocks: registry.counter("scan_encoded_blocks_total", labels),
            rows_short_circuited: registry.counter("scan_rows_short_circuited_total", labels),
            read_requests: registry.counter("scan_read_requests_total", labels),
            requests_saved: registry.counter("scan_coalesced_requests_saved_total", labels),
            coalesced_bytes: registry.counter("scan_coalesced_bytes_total", labels),
            gap_bytes: registry.counter("scan_coalesced_gap_bytes_total", labels),
            waste_bytes: registry.counter("scan_coalesce_waste_bytes_total", labels),
            pushdown_selects: registry.counter("scan_pushdown_selects_total", labels),
            pushdown_fallbacks: registry.counter("scan_pushdown_fallbacks_total", labels),
            pushdown_bytes_saved: registry.counter("scan_pushdown_bytes_saved_total", labels),
            profile_selects: AtomicUsize::new(0),
            profile_saved: AtomicUsize::new(0),
        }
    }

    fn record_io(&self, s: &ReadStats) {
        self.read_requests.add(s.requests);
        self.requests_saved.add(s.requests_saved);
        self.coalesced_bytes.add(s.bytes_read);
        self.gap_bytes.add(s.gap_bytes);
        self.waste_bytes.add(s.waste_bytes);
    }

    /// Record one answered select that spared `saved` plain-GET bytes.
    fn record_select(&self, saved: u64) {
        self.pushdown_selects.inc();
        self.pushdown_bytes_saved.add(saved);
        self.profile_selects.fetch_add(1, Ordering::Relaxed);
        self.profile_saved.fetch_add(saved as usize, Ordering::Relaxed);
    }
}

/// Per-session, per-node scan context.
pub struct NodeProvider {
    pub node: Arc<NodeRuntime>,
    pub snapshot: Arc<CatalogState>,
    /// Segment shards this node serves for the session.
    pub my_shards: Vec<ShardId>,
    /// All segment shards of the database.
    pub all_shards: Vec<ShardId>,
    pub replica_shard: ShardId,
    pub cache_mode: CacheMode,
    /// Crunch-scaling slice when several nodes share each shard (§4.4).
    pub crunch: Option<CrunchSlice>,
    /// Scan-pipeline tuning (worker pool, coalescing, filtering).
    pub scan: ScanOptions,
}

/// Rewrite a predicate from table column indices to projection-local
/// indices. Fails if the projection lacks a referenced column.
fn remap_predicate(p: &Predicate, map: &HashMap<usize, usize>) -> Result<Predicate> {
    Ok(match p {
        Predicate::True => Predicate::True,
        Predicate::Cmp { col, op, lit } => Predicate::Cmp {
            col: *map
                .get(col)
                .ok_or_else(|| EonError::Query(format!("projection lacks column {col}")))?,
            op: *op,
            lit: lit.clone(),
        },
        Predicate::IsNull(c) => Predicate::IsNull(
            *map.get(c)
                .ok_or_else(|| EonError::Query(format!("projection lacks column {c}")))?,
        ),
        Predicate::IsNotNull(c) => Predicate::IsNotNull(
            *map.get(c)
                .ok_or_else(|| EonError::Query(format!("projection lacks column {c}")))?,
        ),
        Predicate::And(ps) => Predicate::And(
            ps.iter().map(|q| remap_predicate(q, map)).collect::<Result<_>>()?,
        ),
        Predicate::Or(ps) => Predicate::Or(
            ps.iter().map(|q| remap_predicate(q, map)).collect::<Result<_>>()?,
        ),
    })
}

impl NodeProvider {
    /// The filesystem scans read through: the depot, or shared storage
    /// directly when the session bypasses the cache (§5.2).
    fn fs(&self) -> &dyn eon_storage::FileSystem {
        if self.cache_mode == CacheMode::Bypass {
            self.node.cache.backing().as_ref()
        } else {
            self.node.cache.as_ref()
        }
    }

    /// Choose the projection to answer a scan: the first one carrying
    /// every needed column, preferring replicated projections for
    /// global scans (one copy to read) and segmented ones for
    /// shard-local scans.
    fn pick_projection<'t>(
        &self,
        table: &'t Table,
        needed: &[usize],
        global: bool,
        hint: Option<&str>,
    ) -> Result<(Oid, &'t Projection)> {
        if let Some(name) = hint {
            return table
                .projections
                .iter()
                .find(|(_, p)| p.name == name)
                .map(|(oid, p)| (*oid, p))
                .ok_or_else(|| {
                    EonError::Query(format!("{} has no projection named {name}", table.name))
                });
        }
        let qualifies = |p: &Projection| needed.iter().all(|c| p.columns.contains(c));
        let (mut segmented, mut replicated) = (None, None);
        for (oid, p) in &table.projections {
            // A LAP's rows are pre-aggregated; it never answers a scan
            // implicitly (§2.1) — only via an explicit projection pin.
            if p.is_live_aggregate() || !qualifies(p) {
                continue;
            }
            if p.is_replicated() {
                replicated.get_or_insert((*oid, p));
            } else {
                segmented.get_or_insert((*oid, p));
            }
        }
        let pick = if global {
            replicated.or(segmented)
        } else {
            segmented.or(replicated)
        };
        pick.ok_or_else(|| {
            EonError::Query(format!(
                "no projection of {} covers the required columns",
                table.name
            ))
        })
    }

    /// Merged delete-vector keep mask for a container, if any deletes
    /// exist.
    fn delete_mask(&self, c: &ContainerMeta) -> Result<Option<Vec<bool>>> {
        let dvs = self.snapshot.delete_vectors_for(c.oid);
        if dvs.is_empty() {
            return Ok(None);
        }
        let mut merged = DeleteVector::default();
        for dv in dvs {
            let data = self.fs().read(&dv.key)?;
            merged = merged.merge(&DeleteVector::decode(&data)?);
        }
        Ok(Some(merged.keep_mask(c.rows)))
    }

    /// Handles for this node's scan-pipeline metrics.
    fn scan_metrics(&self) -> ScanMetrics {
        ScanMetrics::register(&self.scan.obs, &format!("node{}", self.node.id.0))
    }

    /// Run `count` independent scan tasks on the session's scan pool
    /// and return their results in task order, so callers see exactly
    /// the serial iteration order. With one worker (or one task) this
    /// degenerates to the serial loop, early-exit on error included;
    /// in parallel the lowest-index error wins.
    fn run_scan_tasks<T, F>(&self, count: usize, metrics: &ScanMetrics, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        metrics.pool_tasks.add(count as u64);
        let workers = self.scan.workers.max(1).min(count);
        if workers <= 1 {
            return (0..count)
                .map(|i| {
                    if let Some(c) = &self.scan.cancel {
                        c.check("scan task claim")?;
                    }
                    f(i)
                })
                .collect();
        }
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let results = Mutex::new(Vec::with_capacity(count));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    // A fired cancel token stops the pool at the claim
                    // boundary. The claimed index records the error —
                    // not a silent break — so the merged result is an
                    // `Err`, never a truncated `Ok`.
                    if let Some(c) = &self.scan.cancel {
                        if let Err(e) = c.check("scan task claim") {
                            results.lock().push((i, Err(e)));
                            break;
                        }
                    }
                    metrics
                        .queue_wait
                        .observe(started.elapsed().as_micros() as u64);
                    let r = f(i);
                    results.lock().push((i, r));
                });
            }
        });
        let mut results = results.into_inner();
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().map(|(_, r)| r).collect()
    }

    /// Table default for a projection-local column (materialized for
    /// columns added after a container was written, §6.3).
    fn default_for(table: &Table, proj: &Projection, col: usize) -> Value {
        let table_idx = proj.columns[col];
        table.defaults.get(table_idx).cloned().unwrap_or(Value::Null)
    }

    /// Fetch one column's surviving blocks, as encoded views when
    /// compression-aware execution is on, decoded to plain rows when
    /// the session forces decode-first. Either way the scan loop sees
    /// [`EncodedBlock`]s — decode-first just never sees a compressed
    /// one, so the two modes share every line downstream of here.
    #[allow(clippy::too_many_arguments)]
    fn fetch_blocks(
        &self,
        reader: &RosReader,
        fs: &dyn eon_storage::FileSystem,
        col: usize,
        keep: &[bool],
        rstats: &mut ReadStats,
        metrics: &ScanMetrics,
    ) -> Result<Vec<Option<EncodedBlock>>> {
        let gap = self.scan.coalesce_gap;
        if self.scan.encoded_exec {
            let blocks = reader.read_column_blocks_encoded(fs, col, keep, gap, rstats)?;
            metrics.encoded_blocks.add(
                blocks
                    .iter()
                    .flatten()
                    .filter(|b| b.is_encoded())
                    .count() as u64,
            );
            Ok(blocks)
        } else {
            let blocks = reader.read_column_blocks_with(fs, col, keep, gap, rstats)?;
            Ok(blocks
                .into_iter()
                .map(|b| b.map(EncodedBlock::Plain))
                .collect())
        }
    }

    /// Scan one container, returning rows in projection column space
    /// (only `read_cols` populated; absent columns are the table
    /// default).
    ///
    /// Pipeline order: prune blocks on footer min/max stats, fetch
    /// predicate columns (coalesced, as encoded views), evaluate the
    /// predicate into a per-block selection vector — once per RLE run
    /// / dictionary entry on compressed blocks — intersected with the
    /// delete mask, drop blocks with no survivors, then fetch the
    /// remaining columns and gather only selected rows (for compressed
    /// blocks, without ever materializing the block). With
    /// `ScanOptions::late_materialization` off, every kept block is
    /// fully materialized and filtered row-at-a-time — same output.
    #[allow(clippy::too_many_arguments)]
    fn scan_container(
        &self,
        table: &Table,
        proj: &Projection,
        c: &ContainerMeta,
        read_cols: &[usize],
        pred_local: &Predicate,
        width: usize,
        with_positions: bool,
        apply_crunch: bool,
        allow_pushdown: bool,
        metrics: &ScanMetrics,
    ) -> Result<PosRows> {
        let fs = self.fs();
        // A pushdown candidate on a depot-cold file must not fault the
        // file in just to read the footer: open it against the backing
        // store, so an answered select leaves the depot untouched
        // (DESIGN.md "Pushdown execution" — selects never fill the
        // depot). Warm files and plain scans open through the cache as
        // before.
        let pd_candidate = allow_pushdown && self.scan.pushdown && *pred_local != Predicate::True;
        let cold = self.cache_mode != CacheMode::Bypass && !self.node.cache.contains(&c.key);
        let reader = if pd_candidate && cold {
            RosReader::open(self.node.cache.backing().as_ref(), &c.key)?
        } else {
            RosReader::open(fs, &c.key)?
        };
        let footer = reader.footer();
        let present = footer.columns.len();
        let nblocks = footer
            .columns
            .first()
            .map(|col| col.blocks.len())
            .unwrap_or(0);

        // Block-level pruning: all columns share block boundaries.
        let mut keep = vec![true; nblocks];
        for (b, slot) in keep.iter_mut().enumerate() {
            let stats = |col: usize| -> Option<ColumnStats> {
                let meta = footer.columns.get(col)?.blocks.get(b)?;
                Some(ColumnStats {
                    min: meta.min.clone(),
                    max: meta.max.clone(),
                    has_null: meta.has_null,
                })
            };
            *slot = pred_local.could_match(&stats);
        }
        metrics
            .blocks_pruned
            .add(keep.iter().filter(|&&k| !k).count() as u64);
        if !keep.iter().any(|&k| k) {
            return Ok(Vec::new());
        }

        // Pushdown composes with pruning: only unpruned blocks ride in
        // the select's keep mask, and an answered select replaces every
        // plain block GET below this point. A decline — by policy, by a
        // depot hit, or by the store — falls through to the plain path.
        if pd_candidate && (self.cache_mode == CacheMode::Bypass || cold) {
            if let Some(out) = self.try_select_rows(
                table,
                proj,
                c,
                &reader,
                read_cols,
                pred_local,
                width,
                with_positions,
                apply_crunch,
                &keep,
                metrics,
            )? {
                return Ok(out);
            }
        }

        let mut rstats = ReadStats::default();
        let mask = self.delete_mask(c)?;
        // Block start positions (cumulative row counts).
        let mut block_start = Vec::with_capacity(nblocks);
        let mut acc = 0u64;
        if let Some(first) = footer.columns.first() {
            for bm in &first.blocks {
                block_start.push(acc);
                acc += bm.rows;
            }
        }

        let mut col_blocks: HashMap<usize, Vec<Option<EncodedBlock>>> = HashMap::new();
        // Per kept block: which rows survive predicate + delete mask.
        // `None` (only without late materialization) means "all rows,
        // filter during materialization".
        let mut selection: Vec<Option<Vec<bool>>> = vec![None; nblocks];
        let late = self.scan.late_materialization && *pred_local != Predicate::True;

        if late {
            // Fetch predicate columns first. Only columns the caller
            // asked to read participate — a predicate column outside
            // `read_cols` evaluates as Null, exactly as the serial
            // materialize-then-eval path would see it.
            let pcols: Vec<usize> = predicate_cols(pred_local)
                .into_iter()
                .filter(|col| read_cols.contains(col))
                .collect();
            for &col in &pcols {
                if col < present {
                    col_blocks.insert(
                        col,
                        self.fetch_blocks(&reader, fs, col, &keep, &mut rstats, metrics)?,
                    );
                }
            }
            let defaults: HashMap<usize, Value> = pcols
                .iter()
                .filter(|&&col| col >= present)
                .map(|&col| (col, Self::default_for(table, proj, col)))
                .collect();
            let null = Value::Null;
            for b in 0..nblocks {
                if !keep[b] {
                    continue;
                }
                let rows_in_block = footer.columns[0].blocks[b].rows as usize;
                let cols_view: Vec<BlockCol> = (0..width)
                    .map(|col| match col_blocks.get(&col) {
                        Some(blocks) => match &blocks[b] {
                            Some(view) => {
                                metrics.rows_short_circuited.add(view.short_circuit_rows());
                                view.as_block_col()
                            }
                            None => BlockCol::Const(&null),
                        },
                        None => match defaults.get(&col) {
                            Some(d) => BlockCol::Const(d),
                            None => BlockCol::Const(&null),
                        },
                    })
                    .collect();
                let mut sel = pred_local.eval_block(&cols_view, rows_in_block);
                if let Some(m) = &mask {
                    for (r, s) in sel.iter_mut().enumerate() {
                        *s &= m[(block_start[b] + r as u64) as usize];
                    }
                }
                if sel.iter().any(|&s| s) {
                    selection[b] = Some(sel);
                } else {
                    // No survivors: don't fetch the other columns. The
                    // predicate-column bytes already fetched for this
                    // block contributed no row — count them as waste
                    // (a pushed select would not have returned them).
                    keep[b] = false;
                    metrics.blocks_late_skipped.inc();
                    for &col in &pcols {
                        if col < present {
                            rstats.waste_bytes += footer.columns[col].blocks[b].len;
                        }
                    }
                }
            }
            if !keep.iter().any(|&k| k) {
                metrics.record_io(&rstats);
                return Ok(Vec::new());
            }
        }

        // Fetch the remaining needed columns (those physically
        // present) under the — possibly refined — keep mask.
        for &col in read_cols {
            if col < present && !col_blocks.contains_key(&col) {
                col_blocks.insert(
                    col,
                    self.fetch_blocks(&reader, fs, col, &keep, &mut rstats, metrics)?,
                );
            }
        }
        metrics.record_io(&rstats);

        let mut out = Vec::new();
        for b in 0..nblocks {
            if !keep[b] {
                continue;
            }
            let rows_in_block = footer.columns[0].blocks[b].rows as usize;
            // Survivor row indices within the block: the selection
            // vector when late materialization ran, otherwise every
            // row the delete mask keeps (row-at-a-time predicate and
            // crunch filters still apply below).
            let surv: Vec<usize> = match (late, &selection[b]) {
                (true, Some(sel)) => sel
                    .iter()
                    .enumerate()
                    .filter_map(|(r, &s)| s.then_some(r))
                    .collect(),
                (true, None) => continue,
                (false, _) => (0..rows_in_block)
                    .filter(|&r| {
                        mask.as_ref()
                            .map(|m| m[(block_start[b] + r as u64) as usize])
                            .unwrap_or(true)
                    })
                    .collect(),
            };
            if surv.is_empty() {
                continue;
            }
            // Gather survivor values per fetched column. Compressed
            // blocks yield survivors in one pass over their runs/codes
            // without materializing the other rows — this is late
            // materialization below the decode boundary.
            let mut gathered: HashMap<usize, Vec<Value>> = HashMap::new();
            for (&col, blocks) in &col_blocks {
                if let Some(view) = &blocks[b] {
                    gathered.insert(col, view.gather(&surv));
                }
            }
            for (j, &r) in surv.iter().enumerate() {
                let pos = block_start[b] + r as u64;
                let mut row = vec![Value::Null; width];
                for &col in read_cols {
                    row[col] = match col_blocks.get(&col) {
                        // Gathered values are each used exactly once:
                        // move them out instead of cloning.
                        Some(_) => gathered
                            .get_mut(&col)
                            .map(|vals| std::mem::replace(&mut vals[j], Value::Null))
                            .unwrap_or(Value::Null),
                        // Column added after this container was written
                        // (§6.3): materialize the default.
                        None => Self::default_for(table, proj, col),
                    };
                }
                if !late && !pred_local.eval_row(&row) {
                    continue;
                }
                if apply_crunch {
                    if let Some(slice) = &self.crunch {
                        if !slice.keeps_row(&row, proj.seg_cols()) {
                            continue;
                        }
                    }
                }
                let pos_out = if with_positions { pos } else { 0 };
                out.push((pos_out, row));
            }
        }
        Ok(out)
    }

    /// Attempt rows-mode pushdown for one container: predicate and
    /// projection run inside the store, the node rebuilds rows from the
    /// survivors. Returns `Ok(None)` when the crossover policy vetoes
    /// the select or the store declines — the caller runs the plain
    /// path, whose output is identical.
    ///
    /// Delete vectors, crunch slices, table defaults, and positions are
    /// applied node-side, in exactly the order the plain path applies
    /// them, so every caller feature composes with pushdown.
    #[allow(clippy::too_many_arguments)]
    fn try_select_rows(
        &self,
        table: &Table,
        proj: &Projection,
        c: &ContainerMeta,
        reader: &RosReader,
        read_cols: &[usize],
        pred_local: &Predicate,
        width: usize,
        with_positions: bool,
        apply_crunch: bool,
        keep: &[bool],
        metrics: &ScanMetrics,
    ) -> Result<Option<PosRows>> {
        let footer = reader.footer();
        let present = footer.columns.len();
        // Predicate columns that need table defaults stay local (the
        // store has no schema); columns outside `read_cols` evaluate as
        // Null on both paths, so they don't block pushdown.
        let pcols = predicate_cols(pred_local);
        if pcols.iter().any(|&col| read_cols.contains(&col) && col >= present) {
            return Ok(None);
        }
        let send_cols: Vec<usize> =
            read_cols.iter().copied().filter(|&col| col < present).collect();
        if send_cols.is_empty() {
            return Ok(None);
        }
        // Crossover policy: a select charges for bytes scanned; it only
        // pays off when it returns a small fraction of a large fetch.
        let plain_bytes = kept_bytes(footer, keep, &send_cols);
        if plain_bytes < self.scan.pushdown_min_bytes {
            return Ok(None);
        }
        if estimate_selectivity(pred_local, footer, keep) > self.scan.pushdown_max_selectivity {
            metrics.pushdown_fallbacks.inc();
            return Ok(None);
        }
        let req = SelectRequest {
            width,
            predicate: pred_local.clone(),
            keep: keep.to_vec(),
            read_cols: send_cols.clone(),
            agg: None,
        };
        let resp = match self.fs().select(&c.key, &req.encode()?)? {
            Some(bytes) => bytes,
            None => {
                metrics.pushdown_fallbacks.inc();
                return Ok(None);
            }
        };
        metrics.record_select(plain_bytes.saturating_sub(resp.len() as u64));
        let SelectResponse::Rows(blocks) = SelectResponse::decode(&resp)? else {
            return Err(EonError::Internal("rows select answered with partials".into()));
        };

        let mask = self.delete_mask(c)?;
        let mut block_start = Vec::with_capacity(footer.columns[0].blocks.len());
        let mut acc = 0u64;
        for bm in &footer.columns[0].blocks {
            block_start.push(acc);
            acc += bm.rows;
        }
        let mut out = Vec::new();
        for mut br in blocks {
            let b = br.block;
            if b >= block_start.len() || !keep[b] {
                return Err(EonError::Corrupt(format!(
                    "{}: select answered for unexpected block {b}",
                    c.key
                )));
            }
            let rows_in_block = footer.columns[0].blocks[b].rows as usize;
            for j in 0..br.rows.len() {
                let r = br.rows[j];
                if r >= rows_in_block {
                    return Err(EonError::Corrupt(format!(
                        "{}: select row {r} out of block bounds",
                        c.key
                    )));
                }
                let pos = block_start[b] + r as u64;
                if let Some(m) = &mask {
                    if !m[pos as usize] {
                        continue;
                    }
                }
                let mut row = vec![Value::Null; width];
                for &col in read_cols {
                    row[col] = match send_cols.iter().position(|&sc| sc == col) {
                        Some(ci) => std::mem::replace(&mut br.cols[ci][j], Value::Null),
                        // Column added after this container was written
                        // (§6.3): materialize the default locally.
                        None => Self::default_for(table, proj, col),
                    };
                }
                if apply_crunch {
                    if let Some(slice) = &self.crunch {
                        if !slice.keeps_row(&row, proj.seg_cols()) {
                            continue;
                        }
                    }
                }
                out.push((if with_positions { pos } else { 0 }, row));
            }
        }
        Ok(Some(out))
    }

    /// One container's partial aggregates, pushed below the GET when
    /// eligible (no delete vectors, all inputs physically present, big
    /// enough to beat the select overhead), otherwise folded locally
    /// from a plain scan. Either way the returned states are the ones
    /// the local fold would produce.
    #[allow(clippy::too_many_arguments)]
    fn partial_agg_container(
        &self,
        table: &Table,
        proj: &Projection,
        c: &ContainerMeta,
        read_cols: &[usize],
        pred_local: &Predicate,
        width: usize,
        group_local: &[usize],
        aggs_local: &[AggSpec],
        metrics: &ScanMetrics,
    ) -> Result<Partials> {
        let cold = self.cache_mode != CacheMode::Bypass && !self.node.cache.contains(&c.key);
        let depot_ok = self.cache_mode == CacheMode::Bypass || cold;
        let no_dvs = self.snapshot.delete_vectors_for(c.oid).is_empty();
        if depot_ok && no_dvs {
            let fs_for_footer: &dyn eon_storage::FileSystem = if cold {
                self.node.cache.backing().as_ref()
            } else {
                self.fs()
            };
            let reader = RosReader::open(fs_for_footer, &c.key)?;
            let footer = reader.footer();
            let present = footer.columns.len();
            let nblocks = footer
                .columns
                .first()
                .map(|col| col.blocks.len())
                .unwrap_or(0);
            if read_cols.iter().all(|&col| col < present) {
                let mut keep = vec![true; nblocks];
                for (b, slot) in keep.iter_mut().enumerate() {
                    let stats = |col: usize| -> Option<ColumnStats> {
                        let meta = footer.columns.get(col)?.blocks.get(b)?;
                        Some(ColumnStats {
                            min: meta.min.clone(),
                            max: meta.max.clone(),
                            has_null: meta.has_null,
                        })
                    };
                    *slot = pred_local.could_match(&stats);
                }
                metrics
                    .blocks_pruned
                    .add(keep.iter().filter(|&&k| !k).count() as u64);
                if !keep.iter().any(|&k| k) {
                    // Everything pruned: this container contributes the
                    // identity partial, no I/O at all.
                    return aggregate_partial(&Vec::new(), group_local, aggs_local);
                }
                let plain_bytes = kept_bytes(footer, &keep, read_cols);
                if plain_bytes >= self.scan.pushdown_min_bytes {
                    let req = SelectRequest {
                        width,
                        predicate: pred_local.clone(),
                        keep,
                        read_cols: read_cols.to_vec(),
                        agg: Some(AggRequest {
                            group_by: group_local.to_vec(),
                            aggs: aggs_local.to_vec(),
                            max_groups: self.scan.pushdown_max_groups,
                        }),
                    };
                    match self.fs().select(&c.key, &req.encode()?)? {
                        Some(resp) => {
                            metrics.record_select(plain_bytes.saturating_sub(resp.len() as u64));
                            let SelectResponse::Partials(parts) = SelectResponse::decode(&resp)?
                            else {
                                return Err(EonError::Internal(
                                    "agg select answered with rows".into(),
                                ));
                            };
                            return Ok(parts);
                        }
                        None => metrics.pushdown_fallbacks.inc(),
                    }
                }
            }
        }
        // Local fold over the plain scan of this container (rows-mode
        // pushdown may still kick in underneath for the fetch itself).
        let rows = self.scan_container(
            table, proj, c, read_cols, pred_local, width, false, false, true, metrics,
        )?;
        let rows: Vec<Vec<Value>> = rows.into_iter().map(|(_, row)| row).collect();
        aggregate_partial(&rows, group_local, aggs_local)
    }

    /// Forward this scan's pushdown tallies into the query profile, so
    /// `EXPLAIN ANALYZE` shows whether — and how much — the store
    /// filtered below the GET.
    fn annotate_pushdown(&self, metrics: &ScanMetrics) {
        if let Some(p) = &self.scan.profile {
            let selects = metrics.profile_selects.load(Ordering::Relaxed);
            if selects > 0 {
                p.annotate("pushdown_selects", selects as i64);
                p.annotate(
                    "pushdown_bytes_saved",
                    metrics.profile_saved.load(Ordering::Relaxed) as i64,
                );
            }
        }
    }

    /// The shards a scan covers given its distribution and projection.
    fn shards_for(&self, proj: &Projection, global: bool) -> Vec<ShardId> {
        if proj.is_replicated() {
            // One physical copy; for a shard-local scan only the node
            // serving the first session shard reads it (exactly one
            // node cluster-wide), for global scans this node reads it.
            if global || self.my_shards.contains(&self.all_shards[0]) {
                vec![self.replica_shard]
            } else {
                vec![]
            }
        } else if global {
            self.all_shards.clone()
        } else {
            self.my_shards.clone()
        }
    }

    /// Mergeout entry point: all surviving rows of one container in
    /// projection column space (delete vectors applied, sort order
    /// preserved).
    pub fn scan_container_for_merge(
        &self,
        table: &Table,
        proj: &Projection,
        c: &ContainerMeta,
        read_cols: &[usize],
        pred_local: &Predicate,
        width: usize,
    ) -> Result<Vec<Vec<Value>>> {
        let metrics = self.scan_metrics();
        Ok(self
            .scan_container(
                table, proj, c, read_cols, pred_local, width, false, false, false, &metrics,
            )?
            .into_iter()
            .map(|(_, row)| row)
            .collect())
    }

    /// Positions of rows matching `predicate`, per container — the DML
    /// path (delete vectors reference container positions).
    pub fn matching_positions(
        &self,
        table: &str,
        predicate: &Predicate,
    ) -> Result<Vec<(Oid, ShardId, Vec<u64>)>> {
        let t = self
            .snapshot
            .table_by_name(table)
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        let pred_cols = predicate_cols(predicate);
        let (proj_oid, proj) = self.pick_projection(t, &pred_cols, true, None)?;
        let table_to_proj: HashMap<usize, usize> = proj
            .columns
            .iter()
            .enumerate()
            .map(|(pi, &ti)| (ti, pi))
            .collect();
        let pred_local = remap_predicate(predicate, &table_to_proj)?;
        let read_cols: Vec<usize> = pred_cols.iter().map(|c| table_to_proj[c]).collect();
        let width = proj.columns.len();

        let metrics = self.scan_metrics();
        let mut work: Vec<(ShardId, &ContainerMeta)> = Vec::new();
        for shard in self.shards_for(proj, true) {
            for c in self.snapshot.containers_for(proj_oid, shard) {
                work.push((shard, c));
            }
        }
        let per_container = self.run_scan_tasks(work.len(), &metrics, |i| {
            let (_, c) = work[i];
            self.scan_container(
                t, proj, c, &read_cols, &pred_local, width, true, false, false, &metrics,
            )
        })?;
        let mut out = Vec::new();
        for ((shard, c), hits) in work.into_iter().zip(per_container) {
            if !hits.is_empty() {
                out.push((c.oid, shard, hits.into_iter().map(|(p, _)| p).collect()));
            }
        }
        Ok(out)
    }
}

impl TableProvider for NodeProvider {
    fn scan(&self, spec: &ScanSpec) -> Result<Vec<Vec<Value>>> {
        let t = self
            .snapshot
            .table_by_name(&spec.table)
            .ok_or_else(|| EonError::UnknownTable(spec.table.clone()))?;
        let out_cols: Vec<usize> = spec
            .columns
            .clone()
            .unwrap_or_else(|| (0..t.schema.len()).collect());
        let mut needed = out_cols.clone();
        needed.extend(predicate_cols(&spec.predicate));
        needed.sort_unstable();
        needed.dedup();
        let metrics = self.scan_metrics();
        let _span = self
            .scan
            .profile
            .as_ref()
            .map(|p| p.span("scan_pipeline", &format!("node{}:{}", self.node.id.0, spec.table)));

        let global = spec.distribute == eon_exec::Distribution::Global;
        let (proj_oid, proj) =
            self.pick_projection(t, &needed, global, spec.projection.as_deref())?;
        if proj.is_live_aggregate() {
            // Pinned LAP scan: yields the LAP's own layout; predicates
            // and column subsets don't apply to pre-aggregated rows.
            if spec.predicate != Predicate::True || spec.columns.is_some() {
                return Err(EonError::Query(format!(
                    "live aggregate projection {} supports only full unfiltered scans",
                    proj.name
                )));
            }
            let width = proj.columns.len();
            let read_cols: Vec<usize> = (0..width).collect();
            let mut work: Vec<&ContainerMeta> = Vec::new();
            for shard in self.shards_for(proj, global) {
                work.extend(self.snapshot.containers_for(proj_oid, shard));
            }
            let per_container = self.run_scan_tasks(work.len(), &metrics, |i| {
                self.scan_container(
                    t,
                    proj,
                    work[i],
                    &read_cols,
                    &Predicate::True,
                    width,
                    false,
                    false,
                    false,
                    &metrics,
                )
            })?;
            return Ok(per_container
                .into_iter()
                .flatten()
                .map(|(_, row)| row)
                .collect());
        }
        let table_to_proj: HashMap<usize, usize> = proj
            .columns
            .iter()
            .enumerate()
            .map(|(pi, &ti)| (ti, pi))
            .collect();
        let pred_local = remap_predicate(&spec.predicate, &table_to_proj)?;
        let read_cols: Vec<usize> = needed.iter().map(|c| table_to_proj[c]).collect();
        let out_local: Vec<usize> = out_cols.iter().map(|c| table_to_proj[c]).collect();
        let width = proj.columns.len();

        // Crunch hash-filter splits only the shard-local fact scan;
        // broadcast/replicated sides must stay complete on every
        // worker or joins lose rows (§4.4).
        let apply_crunch = !global && !proj.is_replicated();
        // Container-level pruning from catalog statistics happens
        // while building the work list, so the pool only sees
        // containers that actually need I/O.
        let mut work: Vec<&ContainerMeta> = Vec::new();
        for shard in self.shards_for(proj, global) {
            for c in self.snapshot.containers_for(proj_oid, shard) {
                let stats = |col: usize| -> Option<ColumnStats> {
                    let table_idx = proj.columns.get(col).copied()?;
                    match c.col_minmax.get(col) {
                        Some(Some((mn, mx))) => Some(ColumnStats {
                            min: mn.clone(),
                            max: mx.clone(),
                            has_null: true, // catalog stats don't track nulls
                        }),
                        _ => {
                            let _ = table_idx;
                            None
                        }
                    }
                };
                if pred_local.could_match(&stats) {
                    work.push(c);
                }
            }
        }
        let per_container = self.run_scan_tasks(work.len(), &metrics, |i| {
            self.scan_container(
                t,
                proj,
                work[i],
                &read_cols,
                &pred_local,
                width,
                false,
                apply_crunch,
                true,
                &metrics,
            )
        })?;
        self.annotate_pushdown(&metrics);
        let mut rows = Vec::new();
        for (_, row) in per_container.into_iter().flatten() {
            rows.push(out_local.iter().map(|&c| row[c].clone()).collect());
        }
        Ok(rows)
    }

    fn scan_partial_agg(
        &self,
        spec: &ScanSpec,
        group_by: &[usize],
        aggs: &[AggSpec],
    ) -> Result<Option<Partials>> {
        // Crunch slicing filters rows node-side after the fetch;
        // pushing the fold below the GET would fold sliced-away rows
        // in, so crunch workers take the plain path.
        if !self.scan.pushdown || self.crunch.is_some() || !agg_pushable(aggs) {
            return Ok(None);
        }
        let Some(t) = self.snapshot.table_by_name(&spec.table) else {
            return Ok(None); // let the plain path surface the error
        };
        let out_cols: Vec<usize> = spec
            .columns
            .clone()
            .unwrap_or_else(|| (0..t.schema.len()).collect());
        let mut needed = out_cols.clone();
        needed.extend(predicate_cols(&spec.predicate));
        needed.sort_unstable();
        needed.dedup();
        let global = spec.distribute == eon_exec::Distribution::Global;
        let Ok((proj_oid, proj)) =
            self.pick_projection(t, &needed, global, spec.projection.as_deref())
        else {
            return Ok(None);
        };
        if proj.is_live_aggregate() {
            return Ok(None);
        }
        let table_to_proj: HashMap<usize, usize> = proj
            .columns
            .iter()
            .enumerate()
            .map(|(pi, &ti)| (ti, pi))
            .collect();
        let Ok(pred_local) = remap_predicate(&spec.predicate, &table_to_proj) else {
            return Ok(None);
        };
        let read_cols: Vec<usize> = needed.iter().map(|c| table_to_proj[c]).collect();
        let out_local: Vec<usize> = out_cols.iter().map(|c| table_to_proj[c]).collect();
        let width = proj.columns.len();
        // `group_by` / `aggs` index the scan's OUTPUT columns; the
        // per-container fold runs on projection-local rows, so remap.
        let mut group_local = Vec::with_capacity(group_by.len());
        for &g in group_by {
            match out_local.get(g) {
                Some(&l) => group_local.push(l),
                None => return Ok(None),
            }
        }
        let mut aggs_local = Vec::with_capacity(aggs.len());
        for a in aggs {
            let expr = match &a.expr {
                Expr::Col(k) => match out_local.get(*k) {
                    Some(&l) => Expr::col(l),
                    None => return Ok(None),
                },
                other => other.clone(), // CountStar ignores its expr
            };
            aggs_local.push(AggSpec { func: a.func, expr });
        }

        let metrics = self.scan_metrics();
        let _span = self
            .scan
            .profile
            .as_ref()
            .map(|p| p.span("scan_pipeline", &format!("node{}:{}", self.node.id.0, spec.table)));
        let mut work: Vec<&ContainerMeta> = Vec::new();
        for shard in self.shards_for(proj, global) {
            for c in self.snapshot.containers_for(proj_oid, shard) {
                let stats = |col: usize| -> Option<ColumnStats> {
                    match c.col_minmax.get(col) {
                        Some(Some((mn, mx))) => Some(ColumnStats {
                            min: mn.clone(),
                            max: mx.clone(),
                            has_null: true,
                        }),
                        _ => None,
                    }
                };
                if pred_local.could_match(&stats) {
                    work.push(c);
                }
            }
        }
        let per_container = self.run_scan_tasks(work.len(), &metrics, |i| {
            self.partial_agg_container(
                t,
                proj,
                work[i],
                &read_cols,
                &pred_local,
                width,
                &group_local,
                &aggs_local,
                &metrics,
            )
        })?;
        // Float addition is order-sensitive: folding per container and
        // merging would not be byte-identical to the single local fold.
        // Any Float sum state means the whole query falls back.
        let float_sum = per_container.iter().any(|parts| {
            parts.iter().any(|pg| {
                pg.states
                    .iter()
                    .any(|s| matches!(s, AggState::Sum { acc: Value::Float(_) }))
            })
        });
        if float_sum {
            metrics.pushdown_fallbacks.inc();
            return Ok(None);
        }
        let mut parts = per_container;
        // The identity partial makes zero-container global aggregates
        // produce their init group, matching the local path's SQL
        // semantics; with groups present it merges as a no-op.
        parts.push(aggregate_partial(&Vec::new(), &group_local, &aggs_local)?);
        let merged = merge_partials(parts, &aggs_local);
        self.annotate_pushdown(&metrics);
        Ok(Some(merged))
    }

    fn num_columns(&self, table: &str) -> Result<usize> {
        Ok(self
            .snapshot
            .table_by_name(table)
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?
            .schema
            .len())
    }
}
