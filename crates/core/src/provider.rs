//! The Eon [`TableProvider`]: scans that resolve through the catalog
//! snapshot, read container blocks through the node's cache, prune by
//! min/max statistics at container and block level (§2.1), apply
//! delete vectors, and honor session shard assignments (§4) and crunch
//! slices (§4.4).

use std::collections::HashMap;
use std::sync::Arc;

use eon_cache::CacheMode;
use eon_catalog::{CatalogState, ContainerMeta, Table};
use eon_cluster::NodeRuntime;
use eon_columnar::pruning::ColumnStats;
use eon_columnar::{DeleteVector, Predicate, Projection, RosReader};
use eon_exec::crunch::CrunchSlice;
use eon_exec::{ScanSpec, TableProvider};
use eon_types::{EonError, Oid, Result, ShardId, Value};

/// Per-session, per-node scan context.
pub struct NodeProvider {
    pub node: Arc<NodeRuntime>,
    pub snapshot: Arc<CatalogState>,
    /// Segment shards this node serves for the session.
    pub my_shards: Vec<ShardId>,
    /// All segment shards of the database.
    pub all_shards: Vec<ShardId>,
    pub replica_shard: ShardId,
    pub cache_mode: CacheMode,
    /// Crunch-scaling slice when several nodes share each shard (§4.4).
    pub crunch: Option<CrunchSlice>,
}

/// Collect the column indices a predicate touches.
fn predicate_cols(p: &Predicate, out: &mut Vec<usize>) {
    match p {
        Predicate::True => {}
        Predicate::Cmp { col, .. } => {
            if !out.contains(col) {
                out.push(*col);
            }
        }
        Predicate::IsNull(col) | Predicate::IsNotNull(col) => {
            if !out.contains(col) {
                out.push(*col);
            }
        }
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                predicate_cols(q, out);
            }
        }
    }
}

/// Rewrite a predicate from table column indices to projection-local
/// indices. Fails if the projection lacks a referenced column.
fn remap_predicate(p: &Predicate, map: &HashMap<usize, usize>) -> Result<Predicate> {
    Ok(match p {
        Predicate::True => Predicate::True,
        Predicate::Cmp { col, op, lit } => Predicate::Cmp {
            col: *map
                .get(col)
                .ok_or_else(|| EonError::Query(format!("projection lacks column {col}")))?,
            op: *op,
            lit: lit.clone(),
        },
        Predicate::IsNull(c) => Predicate::IsNull(
            *map.get(c)
                .ok_or_else(|| EonError::Query(format!("projection lacks column {c}")))?,
        ),
        Predicate::IsNotNull(c) => Predicate::IsNotNull(
            *map.get(c)
                .ok_or_else(|| EonError::Query(format!("projection lacks column {c}")))?,
        ),
        Predicate::And(ps) => Predicate::And(
            ps.iter().map(|q| remap_predicate(q, map)).collect::<Result<_>>()?,
        ),
        Predicate::Or(ps) => Predicate::Or(
            ps.iter().map(|q| remap_predicate(q, map)).collect::<Result<_>>()?,
        ),
    })
}

impl NodeProvider {
    /// The filesystem scans read through: the depot, or shared storage
    /// directly when the session bypasses the cache (§5.2).
    fn fs(&self) -> &dyn eon_storage::FileSystem {
        if self.cache_mode == CacheMode::Bypass {
            self.node.cache.backing().as_ref()
        } else {
            self.node.cache.as_ref()
        }
    }

    /// Choose the projection to answer a scan: the first one carrying
    /// every needed column, preferring replicated projections for
    /// global scans (one copy to read) and segmented ones for
    /// shard-local scans.
    fn pick_projection<'t>(
        &self,
        table: &'t Table,
        needed: &[usize],
        global: bool,
        hint: Option<&str>,
    ) -> Result<(Oid, &'t Projection)> {
        if let Some(name) = hint {
            return table
                .projections
                .iter()
                .find(|(_, p)| p.name == name)
                .map(|(oid, p)| (*oid, p))
                .ok_or_else(|| {
                    EonError::Query(format!("{} has no projection named {name}", table.name))
                });
        }
        let qualifies = |p: &Projection| needed.iter().all(|c| p.columns.contains(c));
        let (mut segmented, mut replicated) = (None, None);
        for (oid, p) in &table.projections {
            // A LAP's rows are pre-aggregated; it never answers a scan
            // implicitly (§2.1) — only via an explicit projection pin.
            if p.is_live_aggregate() || !qualifies(p) {
                continue;
            }
            if p.is_replicated() {
                replicated.get_or_insert((*oid, p));
            } else {
                segmented.get_or_insert((*oid, p));
            }
        }
        let pick = if global {
            replicated.or(segmented)
        } else {
            segmented.or(replicated)
        };
        pick.ok_or_else(|| {
            EonError::Query(format!(
                "no projection of {} covers the required columns",
                table.name
            ))
        })
    }

    /// Merged delete-vector keep mask for a container, if any deletes
    /// exist.
    fn delete_mask(&self, c: &ContainerMeta) -> Result<Option<Vec<bool>>> {
        let dvs = self.snapshot.delete_vectors_for(c.oid);
        if dvs.is_empty() {
            return Ok(None);
        }
        let mut merged = DeleteVector::default();
        for dv in dvs {
            let data = self.fs().read(&dv.key)?;
            merged = merged.merge(&DeleteVector::decode(&data)?);
        }
        Ok(Some(merged.keep_mask(c.rows)))
    }

    /// Scan one container, returning rows in projection column space
    /// (only `read_cols` populated; absent columns are the table
    /// default).
    #[allow(clippy::too_many_arguments)]
    fn scan_container(
        &self,
        table: &Table,
        proj: &Projection,
        c: &ContainerMeta,
        read_cols: &[usize],
        pred_local: &Predicate,
        width: usize,
        with_positions: bool,
        apply_crunch: bool,
    ) -> Result<Vec<(u64, Vec<Value>)>> {
        let fs = self.fs();
        let reader = RosReader::open(fs, &c.key)?;
        let footer = reader.footer();
        let present = footer.columns.len();
        let nblocks = footer
            .columns
            .first()
            .map(|col| col.blocks.len())
            .unwrap_or(0);

        // Block-level pruning: all columns share block boundaries.
        let mut keep = vec![true; nblocks];
        for (b, slot) in keep.iter_mut().enumerate() {
            let stats = |col: usize| -> Option<ColumnStats> {
                let meta = footer.columns.get(col)?.blocks.get(b)?;
                Some(ColumnStats {
                    min: meta.min.clone(),
                    max: meta.max.clone(),
                    has_null: meta.has_null,
                })
            };
            *slot = pred_local.could_match(&stats);
        }
        if !keep.iter().any(|&k| k) {
            return Ok(Vec::new());
        }

        // Read the needed columns (those physically present).
        let mut col_blocks: HashMap<usize, Vec<Option<Vec<Value>>>> = HashMap::new();
        for &col in read_cols {
            if col < present {
                col_blocks.insert(col, reader.read_column_blocks(fs, col, &keep)?);
            }
        }

        let mask = self.delete_mask(c)?;
        // Block start positions (cumulative row counts).
        let mut block_start = Vec::with_capacity(nblocks);
        let mut acc = 0u64;
        if let Some(first) = footer.columns.first() {
            for bm in &first.blocks {
                block_start.push(acc);
                acc += bm.rows;
            }
        }

        let mut out = Vec::new();
        for b in 0..nblocks {
            if !keep[b] {
                continue;
            }
            let rows_in_block = footer.columns[0].blocks[b].rows as usize;
            for r in 0..rows_in_block {
                let pos = block_start[b] + r as u64;
                if let Some(m) = &mask {
                    if !m[pos as usize] {
                        continue;
                    }
                }
                let mut row = vec![Value::Null; width];
                for &col in read_cols {
                    row[col] = match col_blocks.get(&col) {
                        Some(blocks) => blocks[b]
                            .as_ref()
                            .map(|vals| vals[r].clone())
                            .unwrap_or(Value::Null),
                        // Column added after this container was written
                        // (§6.3): materialize the default.
                        None => {
                            let table_idx = proj.columns[col];
                            table
                                .defaults
                                .get(table_idx)
                                .cloned()
                                .unwrap_or(Value::Null)
                        }
                    };
                }
                if !pred_local.eval_row(&row) {
                    continue;
                }
                if apply_crunch {
                    if let Some(slice) = &self.crunch {
                        if !slice.keeps_row(&row, proj.seg_cols()) {
                            continue;
                        }
                    }
                }
                let pos_out = if with_positions { pos } else { 0 };
                out.push((pos_out, row));
            }
        }
        Ok(out)
    }

    /// The shards a scan covers given its distribution and projection.
    fn shards_for(&self, proj: &Projection, global: bool) -> Vec<ShardId> {
        if proj.is_replicated() {
            // One physical copy; for a shard-local scan only the node
            // serving the first session shard reads it (exactly one
            // node cluster-wide), for global scans this node reads it.
            if global || self.my_shards.contains(&self.all_shards[0]) {
                vec![self.replica_shard]
            } else {
                vec![]
            }
        } else if global {
            self.all_shards.clone()
        } else {
            self.my_shards.clone()
        }
    }

    /// Mergeout entry point: all surviving rows of one container in
    /// projection column space (delete vectors applied, sort order
    /// preserved).
    pub fn scan_container_for_merge(
        &self,
        table: &Table,
        proj: &Projection,
        c: &ContainerMeta,
        read_cols: &[usize],
        pred_local: &Predicate,
        width: usize,
    ) -> Result<Vec<Vec<Value>>> {
        Ok(self
            .scan_container(table, proj, c, read_cols, pred_local, width, false, false)?
            .into_iter()
            .map(|(_, row)| row)
            .collect())
    }

    /// Positions of rows matching `predicate`, per container — the DML
    /// path (delete vectors reference container positions).
    pub fn matching_positions(
        &self,
        table: &str,
        predicate: &Predicate,
    ) -> Result<Vec<(Oid, ShardId, Vec<u64>)>> {
        let t = self
            .snapshot
            .table_by_name(table)
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        let mut pred_cols = Vec::new();
        predicate_cols(predicate, &mut pred_cols);
        let (proj_oid, proj) = self.pick_projection(t, &pred_cols, true, None)?;
        let table_to_proj: HashMap<usize, usize> = proj
            .columns
            .iter()
            .enumerate()
            .map(|(pi, &ti)| (ti, pi))
            .collect();
        let pred_local = remap_predicate(predicate, &table_to_proj)?;
        let read_cols: Vec<usize> = pred_cols.iter().map(|c| table_to_proj[c]).collect();
        let width = proj.columns.len();

        let mut out = Vec::new();
        for shard in self.shards_for(proj, true) {
            for c in self.snapshot.containers_for(proj_oid, shard) {
                let hits =
                    self.scan_container(t, proj, c, &read_cols, &pred_local, width, true, false)?;
                if !hits.is_empty() {
                    out.push((c.oid, shard, hits.into_iter().map(|(p, _)| p).collect()));
                }
            }
        }
        Ok(out)
    }
}

impl TableProvider for NodeProvider {
    fn scan(&self, spec: &ScanSpec) -> Result<Vec<Vec<Value>>> {
        let t = self
            .snapshot
            .table_by_name(&spec.table)
            .ok_or_else(|| EonError::UnknownTable(spec.table.clone()))?;
        let out_cols: Vec<usize> = spec
            .columns
            .clone()
            .unwrap_or_else(|| (0..t.schema.len()).collect());
        let mut needed = out_cols.clone();
        predicate_cols(&spec.predicate, &mut needed);
        needed.sort_unstable();
        needed.dedup();

        let global = spec.distribute == eon_exec::Distribution::Global;
        let (proj_oid, proj) =
            self.pick_projection(t, &needed, global, spec.projection.as_deref())?;
        if proj.is_live_aggregate() {
            // Pinned LAP scan: yields the LAP's own layout; predicates
            // and column subsets don't apply to pre-aggregated rows.
            if spec.predicate != Predicate::True || spec.columns.is_some() {
                return Err(EonError::Query(format!(
                    "live aggregate projection {} supports only full unfiltered scans",
                    proj.name
                )));
            }
            let width = proj.columns.len();
            let read_cols: Vec<usize> = (0..width).collect();
            let mut rows = Vec::new();
            for shard in self.shards_for(proj, global) {
                for c in self.snapshot.containers_for(proj_oid, shard) {
                    for (_, row) in self.scan_container(
                        t,
                        proj,
                        c,
                        &read_cols,
                        &Predicate::True,
                        width,
                        false,
                        false,
                    )? {
                        rows.push(row);
                    }
                }
            }
            return Ok(rows);
        }
        let table_to_proj: HashMap<usize, usize> = proj
            .columns
            .iter()
            .enumerate()
            .map(|(pi, &ti)| (ti, pi))
            .collect();
        let pred_local = remap_predicate(&spec.predicate, &table_to_proj)?;
        let read_cols: Vec<usize> = needed.iter().map(|c| table_to_proj[c]).collect();
        let out_local: Vec<usize> = out_cols.iter().map(|c| table_to_proj[c]).collect();
        let width = proj.columns.len();

        let mut rows = Vec::new();
        for shard in self.shards_for(proj, global) {
            for c in self.snapshot.containers_for(proj_oid, shard) {
                // Container-level pruning from catalog statistics.
                let stats = |col: usize| -> Option<ColumnStats> {
                    let table_idx = proj.columns.get(col).copied()?;
                    match c.col_minmax.get(col) {
                        Some(Some((mn, mx))) => Some(ColumnStats {
                            min: mn.clone(),
                            max: mx.clone(),
                            has_null: true, // catalog stats don't track nulls
                        }),
                        _ => {
                            let _ = table_idx;
                            None
                        }
                    }
                };
                if !pred_local.could_match(&stats) {
                    continue;
                }
                // Crunch hash-filter splits only the shard-local fact
                // scan; broadcast/replicated sides must stay complete
                // on every worker or joins lose rows (§4.4).
                let apply_crunch = !global && !proj.is_replicated();
                for (_, row) in self.scan_container(
                    t, proj, c, &read_cols, &pred_local, width, false, apply_crunch,
                )? {
                    rows.push(out_local.iter().map(|&c| row[c].clone()).collect());
                }
            }
        }
        Ok(rows)
    }

    fn num_columns(&self, table: &str) -> Result<usize> {
        Ok(self
            .snapshot
            .table_by_name(table)
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?
            .schema
            .len())
    }
}
