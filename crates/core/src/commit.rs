//! Group commit (DESIGN.md "Group commit"): amortize the fixed
//! per-commit costs — the durable log append and the distribution
//! round-trip to every up node — across concurrent statements.
//!
//! Every DML statement serializes on the global commit lock, so under
//! many small concurrent writers (the trickle-load shape) commit cost,
//! not data movement, bounds throughput. The accumulator batches
//! concurrent `commit_staged_write` / `commit_cluster` calls: the first
//! arrival becomes the **batch leader** and waits a small accumulation
//! window (`EonConfig::commit_group_window` deterministic ticks,
//! closing early at `commit_group_max` statements); followers park
//! their validated [`Txn`]s and wake with their own [`TxnRecord`] or
//! their own typed error. The leader then, under the commit lock:
//!
//! 1. per statement, in arrival order: re-validates its §4.5 writer
//!    subscriptions against the *current* snapshot and OCC-commits it
//!    on the batch coordinator — one stale writer or write conflict
//!    fails *that* statement, never the batch;
//! 2. applies the committed records to every other up node's in-memory
//!    catalog in one pass ([`eon_catalog::Catalog::apply_committed_batch`],
//!    one copy-on-write clone per node per batch instead of per record);
//! 3. appends all records as **one** multi-record log file on the
//!    coordinator (the §3.5 durability point — a single atomic write,
//!    so a crash durably commits the whole batch or nothing, never a
//!    gap), then distributes the same single append to every peer.
//!
//! Determinism rule: the accumulation window is measured in planned
//! ticks — each leader wait charges one full tick whether the condvar
//! wakes early or times out — and batch *composition* under seeded
//! scheduling is pinned by the harness, which gates arrivals on
//! [`EonDb::commit_group_queued`] and sizes `commit_group_max` to the
//! intended batch, so the leader closes the batch at exactly the
//! planned membership and same-seed chaos runs replay byte-identically.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use eon_catalog::{Txn, TxnRecord};
use eon_cluster::NodeRuntime;
use eon_obs::{Counter, Histogram, Registry};
use eon_storage::fault::site;
use eon_types::{EonError, Result};

use crate::db::EonDb;
use crate::load::LoadWriters;

/// One accumulation tick. The absolute length only matters for wall
/// clock — determinism comes from charging whole ticks, not from the
/// duration.
const GROUP_TICK: Duration = Duration::from_micros(200);

/// Registry handles for the commit protocol. All deterministic
/// functions of the workload and the batch composition.
pub(crate) struct CommitMetrics {
    /// Statements committed through the cluster commit protocol.
    pub(crate) statements: Arc<Counter>,
    /// Durable log-file appends on the batch coordinator — the count
    /// group commit exists to shrink (serial: one per statement).
    pub(crate) appends: Arc<Counter>,
    /// Statements that parked as group-commit followers.
    pub(crate) group_waits: Arc<Counter>,
    /// Statements per closed batch.
    pub(crate) batch_size: Arc<Histogram>,
}

impl CommitMetrics {
    pub(crate) fn register(registry: &Registry) -> Self {
        let labels: &[(&str, &str)] = &[("subsystem", "commit")];
        CommitMetrics {
            statements: registry.counter("commit_statements_total", labels),
            appends: registry.counter("commit_appends_total", labels),
            group_waits: registry.counter("commit_group_waits_total", labels),
            batch_size: registry.histogram(
                "commit_batch_size",
                labels,
                vec![1, 2, 4, 8, 16, 32],
                eon_obs::Determinism::Seeded,
            ),
        }
    }
}

/// Where a parked statement's outcome lands. The leader delivers each
/// member's own record or typed error; the member blocks on `done`.
struct CommitSlot {
    result: Mutex<Option<Result<TxnRecord>>>,
    done: Condvar,
}

impl CommitSlot {
    fn new() -> Arc<CommitSlot> {
        Arc::new(CommitSlot {
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn deliver(&self, r: Result<TxnRecord>) {
        *self.result.lock() = Some(r);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<TxnRecord> {
        let mut g = self.result.lock();
        while g.is_none() {
            self.done.wait(&mut g);
        }
        g.take().expect("checked above")
    }
}

/// A statement parked in the accumulator.
struct Pending {
    txn: Txn,
    coord: Arc<NodeRuntime>,
    /// Present for staged writes (COPY / UPDATE): the §4.5 writer set
    /// to re-validate under the lock. `None` for plain catalog commits.
    writers: Option<LoadWriters>,
    slot: Arc<CommitSlot>,
}

#[derive(Default)]
struct GroupInner {
    queue: Vec<Pending>,
    /// A leader is currently accumulating (not yet drained its batch).
    leader_active: bool,
}

/// The group-commit accumulator hung off [`EonDb`].
pub(crate) struct GroupCommit {
    inner: Mutex<GroupInner>,
    /// Leader parks here between ticks; arrivals notify it so a full
    /// batch closes without waiting out the window.
    arrivals: Condvar,
}

impl GroupCommit {
    pub(crate) fn new() -> GroupCommit {
        GroupCommit {
            inner: Mutex::new(GroupInner::default()),
            arrivals: Condvar::new(),
        }
    }
}

impl EonDb {
    /// Statements currently parked in the accumulator. Harness hook:
    /// deterministic schedules gate arrivals on this so batch
    /// composition is part of the plan, not of thread timing.
    pub fn commit_group_queued(&self) -> usize {
        self.group_commit.inner.lock().queue.len()
    }

    /// Group-commit entry point: park the statement, elect the first
    /// arrival as leader, return this statement's own outcome.
    pub(crate) fn commit_grouped(
        &self,
        txn: Txn,
        coord: Arc<NodeRuntime>,
        writers: Option<LoadWriters>,
    ) -> Result<TxnRecord> {
        let metrics = CommitMetrics::register(&self.config.obs);
        let gc = &self.group_commit;
        let slot = CommitSlot::new();
        let mut g = gc.inner.lock();
        let is_leader = !g.leader_active;
        g.leader_active = true;
        g.queue.push(Pending {
            txn,
            coord,
            writers,
            slot: slot.clone(),
        });
        gc.arrivals.notify_all();
        if !is_leader {
            drop(g);
            metrics.group_waits.inc();
            return slot.wait();
        }
        // Leader: accumulate for up to `window` ticks, closing early
        // when the batch fills. Each wait charges one full tick
        // regardless of why it woke (the planned-wait determinism
        // rule): tick count is a function of arrivals, not of races.
        let window = self.commit_group_window();
        let max = self.config.commit_group_max.max(1);
        let mut ticks = 0;
        while g.queue.len() < max && ticks < window {
            gc.arrivals.wait_for(&mut g, GROUP_TICK);
            ticks += 1;
        }
        let batch: Vec<Pending> = std::mem::take(&mut g.queue);
        g.leader_active = false;
        drop(g);
        metrics.batch_size.observe(batch.len() as u64);
        self.run_commit_batch(batch, &metrics);
        slot.wait()
    }

    /// The leader's pass. Never returns an error — every outcome,
    /// including the leader's own, is delivered through the members'
    /// slots so each statement observes *its* result.
    fn run_commit_batch(&self, batch: Vec<Pending>, metrics: &CommitMetrics) {
        let _lock = self.commit_lock.lock();
        // Phase 1 — commit each statement on the batch coordinator (the
        // first committed statement's coord), in arrival order.
        // Catalogs are in lockstep so a Txn begun on any node's catalog
        // validates identically here; per-statement failures
        // (stale writer, OCC conflict) fail that statement alone.
        let mut committed: Vec<(TxnRecord, Arc<CommitSlot>)> = Vec::new();
        let mut batch_coord: Option<Arc<NodeRuntime>> = None;
        let mut dropped: Vec<(Vec<String>, eon_types::TxnVersion)> = Vec::new();
        for p in batch {
            let coord = batch_coord.get_or_insert_with(|| p.coord.clone());
            let snapshot = coord.catalog.snapshot();
            if let Some(w) = &p.writers {
                if let Err(e) = self.validate_writers(&snapshot, w) {
                    p.slot.deliver(Err(e));
                    continue;
                }
            }
            let keys = Self::dropped_keys(&p.txn);
            match coord.catalog.commit(p.txn) {
                Ok(rec) => {
                    metrics.statements.inc();
                    dropped.push((keys, rec.version));
                    committed.push((rec, p.slot));
                }
                Err(e) => p.slot.deliver(Err(e)),
            }
        }
        let Some(coord) = batch_coord else {
            return;
        };
        if committed.is_empty() {
            return;
        }
        let records: Vec<TxnRecord> = committed.iter().map(|(r, _)| r.clone()).collect();

        // Phase 2 — one in-memory apply pass per peer for the whole
        // batch. Failure is §3.4 divergence: batch-fatal, halts the
        // cluster.
        let mut fatal: Option<EonError> = None;
        for node in self.membership.up_nodes() {
            if node.id == coord.id {
                continue;
            }
            if let Err(e) = node.catalog.apply_committed_batch(&records) {
                fatal = Some(self.declare_divergence(node.id, &e));
                break;
            }
        }

        // Phase 3 — durability and distribution: one multi-record log
        // file, appended first on the coordinator (the §3.5 durability
        // point: the single atomic write is what makes the batch
        // all-or-nothing on disk), then on every peer. A fired crash
        // site models the leader process dying — every member observes
        // the crash; a *real* peer append failure is divergence.
        if fatal.is_none() {
            let durable = self
                .config
                .faults
                .hit(site::COMMIT_LEADER_APPEND)
                .and_then(|()| {
                    self.charge_append_cost();
                    coord.store.append_local_batch(&records)
                });
            match durable {
                Ok(()) => metrics.appends.inc(),
                Err(e) => fatal = Some(e),
            }
        }
        if fatal.is_none() {
            'peers: for node in self.membership.up_nodes() {
                if node.id == coord.id {
                    continue;
                }
                if let Err(e) = self
                    .config
                    .faults
                    .hit_node(site::COMMIT_MID_DISTRIBUTION, node.id.0)
                {
                    fatal = Some(e);
                    break 'peers;
                }
                self.charge_append_cost();
                if let Err(e) = node.store.append_local_batch(&records) {
                    fatal = Some(match e {
                        crash @ EonError::FaultInjected(_) => crash,
                        other => self.declare_divergence(node.id, &other),
                    });
                    break 'peers;
                }
            }
        }
        if fatal.is_none() {
            if let Err(e) = self.config.faults.hit(site::COMMIT_POST_APPEND) {
                fatal = Some(e);
            }
        }

        if let Some(e) = fatal {
            for (_, slot) in committed {
                slot.deliver(Err(e.clone()));
            }
            return;
        }

        // Reference count (§6.5) against the post-batch snapshot, per
        // statement at its own version — exactly the bookkeeping each
        // statement would have done committing alone.
        let post = coord.catalog.snapshot();
        for (keys, version) in dropped {
            let orphaned: Vec<String> = keys
                .into_iter()
                .filter(|k| {
                    !post.containers.values().any(|c| &c.key == k)
                        && !post.delete_vectors.values().any(|d| &d.key == k)
                })
                .collect();
            self.reaper.note_dropped(orphaned, version);
        }
        for (rec, slot) in committed {
            slot.deliver(Ok(rec));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_catalog::CatalogOp;
    use eon_columnar::Projection;
    use eon_storage::fault::FaultPlan;
    use eon_storage::MemFs;
    use eon_types::{schema, NodeId, ShardId, TxnVersion, Value};

    fn db_with(config: EonConfig) -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), config).unwrap();
        let s = schema![("id", Int), ("val", Int)];
        db.create_table(
            "t",
            s.clone(),
            vec![Projection::super_projection("tp", &s, &[0], &[0])],
        )
        .unwrap();
        db
    }

    /// Committed write-path state, keys included — both configurations
    /// must produce it byte for byte.
    fn fingerprint(db: &EonDb) -> Vec<String> {
        let snap = db.snapshot().unwrap();
        let mut out: Vec<String> = snap
            .containers
            .values()
            .map(|c| {
                format!(
                    "c:{}:{}:{}:{}:{}",
                    c.oid.0, c.key, c.shard, c.rows, c.size_bytes
                )
            })
            .collect();
        out.sort();
        out.push(format!("v:{}", db.version().0));
        out
    }

    /// Sequenced concurrent single-row COPYs: writer `i` starts once
    /// `i` statements are parked, so arrival order (and therefore
    /// coordinator rotation, key minting, and batch composition) is the
    /// plan's, not the scheduler's.
    fn run_sequenced_copies(db: &Arc<EonDb>, writers: usize) {
        std::thread::scope(|scope| {
            for i in 0..writers {
                let db = db.clone();
                scope.spawn(move || {
                    while db.commit_group_queued() < i {
                        std::thread::yield_now();
                    }
                    db.copy_into("t", vec![vec![Value::Int(i as i64), Value::Int(7)]])
                        .unwrap();
                });
            }
        });
    }

    #[test]
    fn grouped_copies_match_serial_state_with_fewer_appends() {
        const WRITERS: usize = 4;
        // Serial reference: same statements, same order, one at a time.
        let serial = db_with(EonConfig::new(3, 3));
        for i in 0..WRITERS {
            serial
                .copy_into("t", vec![vec![Value::Int(i as i64), Value::Int(7)]])
                .unwrap();
        }
        let grouped = db_with(EonConfig::new(3, 3).commit_group_max(WRITERS));
        let metrics = CommitMetrics::register(grouped.metrics());
        let (appends0, stmts0) = (metrics.appends.get(), metrics.statements.get());
        grouped.set_commit_group_window(500_000);
        run_sequenced_copies(&grouped, WRITERS);
        assert_eq!(fingerprint(&grouped), fingerprint(&serial));

        // The whole batch landed in one durable append: every node's
        // local log streams all four records, and the coordinator-side
        // append counter moved once for the batch.
        let batch_stmts = WRITERS as u64;
        assert_eq!(metrics.appends.get() - appends0, 1, "one append for the batch");
        assert_eq!(metrics.statements.get() - stmts0, batch_stmts);
        assert_eq!(metrics.group_waits.get(), batch_stmts - 1);
        assert_eq!(metrics.batch_size.count(), 1);
        assert_eq!(metrics.batch_size.sum(), batch_stmts);
        let pre_batch = grouped.version().0 - batch_stmts;
        for node in grouped.membership().up_nodes() {
            let recs = node
                .store
                .read_records_after(TxnVersion(pre_batch))
                .unwrap();
            assert_eq!(recs.len(), WRITERS, "node {} missing records", node.id);
        }
    }

    #[test]
    fn conflicting_member_fails_alone() {
        let db = db_with(EonConfig::new(3, 3).commit_group_max(2));
        db.set_commit_group_window(500_000);
        let coord = db.membership().up_nodes()[0].clone();
        let oid = coord.catalog.snapshot().table_by_name("t").unwrap().oid;
        let v0 = db.version();
        // Both members drop the same table: the first (by arrival order)
        // commits, the second must get its own WriteConflict while the
        // batch still commits.
        let results: Vec<Result<TxnRecord>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let db = db.clone();
                    let coord = coord.clone();
                    scope.spawn(move || {
                        while db.commit_group_queued() < i {
                            std::thread::yield_now();
                        }
                        let mut txn = coord.catalog.begin();
                        txn.push(CatalogOp::DropTable(oid));
                        db.commit_cluster(txn, &coord)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results[0].is_ok(), "{:?}", results[0]);
        assert!(
            matches!(results[1], Err(EonError::WriteConflict(_))),
            "{:?}",
            results[1]
        );
        assert_eq!(db.version(), TxnVersion(v0.0 + 1));
        // The surviving record is durable everywhere.
        for node in db.membership().up_nodes() {
            assert_eq!(node.store.read_records_after(v0).unwrap().len(), 1);
        }
    }

    #[test]
    fn peer_append_failure_is_metadata_divergence() {
        // Satellite regression: a peer that applied a record in memory
        // but failed its durable append must surface §3.4 ClusterDown,
        // not a retryable storage error — and the cluster must halt.
        let faults = FaultPlan::inert();
        let db = db_with(EonConfig::new(3, 3).faults(faults.clone()));
        let coord = db.membership().get(NodeId(0)).unwrap();
        let victim = NodeId(1);
        faults.rearm(
            eon_storage::fault::site::COMMIT_PEER_APPEND,
            0,
            Some(victim.0),
        );
        let mut txn = coord.catalog.begin();
        txn.push(CatalogOp::SetMergeoutCoordinator {
            shard: ShardId(0),
            node: NodeId(0),
        });
        let err = db.commit_cluster(txn, &coord).unwrap_err();
        match &err {
            EonError::ClusterDown(msg) => {
                assert!(
                    msg.contains(&format!("metadata divergence on {victim}")),
                    "wrong divergence message: {msg}"
                );
            }
            other => panic!("expected ClusterDown, got {other:?}"),
        }
        // §3.4: once divergent, the cluster is down for everything.
        assert!(matches!(
            db.cluster_health(),
            crate::supervisor::ClusterHealth::Down { .. }
        ));
        assert!(db.copy_into("t", vec![vec![Value::Int(1), Value::Int(1)]]).is_err());
    }

    #[test]
    fn grouped_path_serves_ddl_and_dml() {
        // A lone statement through the grouped path: the leader waits
        // out the (small) window and commits a singleton batch. The
        // window is live from creation, so bootstrap DDL also routes
        // through the accumulator.
        let db = db_with(EonConfig::new(3, 3).commit_group_window(2));
        db.copy_into("t", vec![vec![Value::Int(1), Value::Int(2)]])
            .unwrap();
        let s = schema![("x", Int)];
        db.create_table(
            "t2",
            s.clone(),
            vec![Projection::super_projection("t2p", &s, &[0], &[0])],
        )
        .unwrap();
        let n = db
            .delete_where(
                "t",
                &eon_columnar::Predicate::cmp(0, eon_columnar::pruning::CmpOp::Eq, 1i64),
            )
            .unwrap();
        assert_eq!(n, 1);
        let metrics = CommitMetrics::register(db.metrics());
        assert_eq!(metrics.appends.get(), metrics.batch_size.count());
    }
}
