//! Eon mode itself: the shared-storage columnar database the paper
//! describes, assembled from the substrate crates.
//!
//! [`EonDb`] is the public entry point. It owns the shared storage
//! handle, the cluster membership, and the commit protocol, and
//! exposes:
//!
//! * DDL — `create_table`, `create_projection`, `add_column` (OCC,
//!   §6.3), `drop_table`;
//! * load — `copy_into` (the Fig 8 workflow: split by shard, write
//!   through the cache, ship to peer caches, upload before commit);
//! * queries — `query` with participating-subscription selection
//!   (§4.1), execution slots (§4.2), subcluster isolation (§4.3), and
//!   crunch scaling (§4.4);
//! * DML — `delete_where`, `update_where` via delete vectors;
//! * maintenance — mergeout with per-shard coordinators (§6.2),
//!   metadata sync + consensus truncation + `cluster_info.json`
//!   (§3.5), reference-counted file deletion and the leak scan (§6.5);
//! * elasticity & fault tolerance — `kill_node`, `restart_node`
//!   (re-subscription, §3.3/§6.1), `add_node`/`remove_node` (§6.4),
//!   and `revive` (§3.5).

pub mod admission;
pub mod commit;
pub mod config;
pub mod db;
pub mod ddl;
pub mod invariants;
pub mod lap;
pub mod dml;
pub mod lifecycle;
pub mod load;
pub mod maintenance;
pub mod provider;
pub mod pushdown;
pub mod query;
pub mod sql_api;
pub mod supervisor;

pub use admission::{AdmissionControl, AdmissionGuard, AdmissionLimits};
pub use config::EonConfig;
pub use db::EonDb;
pub use invariants::{check_crash_invariants, InvariantReport, TableModel};
pub use query::SessionOpts;
pub use sql_api::SqlResult;
pub use supervisor::{ClusterHealth, SupervisorReport};
