//! DML: DELETE and UPDATE via delete vectors (paper §2.3, §4.5).
//!
//! "Deletes and updates are implemented with a tombstone-like mechanism
//! called a delete vector … An update is modeled as a delete followed
//! by an insert." Delete vectors are storage objects: written to shared
//! storage before commit like any data file, cached write-through, and
//! associated with the shard of the container they tombstone.

use std::sync::Arc;

use eon_cache::CacheMode;
use eon_catalog::{CatalogOp, Txn};
use eon_cluster::NodeRuntime;
use eon_storage::fault::site as fault_site;
use eon_columnar::{DeleteVector, Predicate};
use eon_exec::{Plan, ScanSpec};
use eon_types::{EonError, Result, Value};

use crate::db::EonDb;
use crate::load::LoadMetrics;
use crate::provider::NodeProvider;

impl EonDb {
    /// A provider view of `coord` over the whole keyspace, for
    /// coordinator-side DML scans (§4.5 would distribute these, which
    /// changes performance, not outcomes).
    fn dml_provider(
        &self,
        coord: &Arc<NodeRuntime>,
        snapshot: Arc<eon_catalog::CatalogState>,
    ) -> NodeProvider {
        NodeProvider {
            node: coord.clone(),
            snapshot,
            my_shards: self.segment_shards(),
            all_shards: self.segment_shards(),
            replica_shard: self.replica_shard(),
            cache_mode: CacheMode::Normal,
            crunch: None,
            scan: self.scan_options(coord, None, None),
        }
    }

    /// Find the rows matching `predicate`, encode one delete vector per
    /// hit container, upload the DVs on the write pool, and push
    /// `AddDeleteVector` ops — OIDs minted after the join, in hit
    /// order, like the load path. Uploaded keys land in `uploaded`
    /// (successes of a partially-failed fan-out included). Returns the
    /// number of rows tombstoned.
    pub(crate) fn stage_delete_vectors(
        &self,
        txn: &mut Txn,
        coord: &Arc<NodeRuntime>,
        table: &str,
        predicate: &Predicate,
        uploaded: &mut Vec<String>,
    ) -> Result<u64> {
        let provider = self.dml_provider(coord, Arc::new(txn.snapshot().clone()));
        let hits = provider.matching_positions(table, predicate)?;
        // Keys pre-minted in hit order: the committed state must not
        // depend on upload scheduling (DESIGN.md "Write pipeline").
        let jobs: Vec<(eon_types::Oid, eon_types::ShardId, String, DeleteVector)> = hits
            .into_iter()
            .map(|(container_oid, shard, positions)| {
                let key = coord.next_sid().object_key_with("dv");
                (container_oid, shard, key, DeleteVector::new(positions))
            })
            .collect();
        let total: u64 = jobs.iter().map(|(_, _, _, dv)| dv.len() as u64).sum();

        let metrics = LoadMetrics::register(&self.config.obs, &format!("node{}", coord.id.0));
        let width = self.load_pool_width(coord);
        let results = self.run_write_pool(width, jobs.len(), &metrics, None, |i| {
            let (_, _, key, dv) = &jobs[i];
            // Crash site: dies between delete-vector uploads, orphaning
            // any DV files already on shared storage.
            self.config.faults.hit(fault_site::DML_UPLOAD)?;
            // Delete marks are files too: cache + upload before commit.
            coord.cache.put_through(key, dv.encode())?;
            Ok(())
        });
        let mut first_err = None;
        for (r, (_, _, key, _)) in results.into_iter().zip(&jobs) {
            match r {
                Some(Ok(())) => uploaded.push(key.clone()),
                Some(Err(e)) => {
                    // Attempted PUTs whose response was lost may have
                    // applied; register the pre-minted key anyway —
                    // reaping a missing object is a no-op (§5.3).
                    uploaded.push(key.clone());
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                None => {}
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        for (container_oid, shard, key, dv) in jobs {
            txn.push(CatalogOp::AddDeleteVector(eon_catalog::DeleteVectorMeta {
                oid: coord.catalog.next_oid(),
                key,
                container: container_oid,
                shard,
                deleted_rows: dv.len() as u64,
            }));
        }
        Ok(total)
    }

    /// §2.1: Live Aggregate Projections "trade-off … against
    /// restrictions on how the base table can be updated" — a delete
    /// vector cannot be applied to pre-aggregated rows.
    fn check_dml_allowed(t: &eon_catalog::Table, table: &str) -> Result<()> {
        if t.projections.iter().any(|(_, p)| p.is_live_aggregate()) {
            return Err(EonError::Query(format!(
                "{table} has a live aggregate projection; DELETE/UPDATE are restricted"
            )));
        }
        Ok(())
    }

    /// DELETE FROM `table` WHERE `predicate`. Returns rows deleted.
    pub fn delete_where(&self, table: &str, predicate: &Predicate) -> Result<u64> {
        self.admit_write()?;
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let t = txn
            .snapshot()
            .table_by_name(table)
            .cloned()
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        Self::check_dml_allowed(&t, table)?;
        txn.observe(t.oid);

        let mut uploaded = Vec::new();
        let staged = self.stage_delete_vectors(&mut txn, &coord, table, predicate, &mut uploaded);
        let result = staged.and_then(|total| {
            if total == 0 {
                return Ok(0);
            }
            // Crash site: delete vectors uploaded, commit never runs —
            // the deletes must stay invisible and the DV files get
            // reclaimed.
            self.config.faults.hit(fault_site::DML_PRE_COMMIT)?;
            self.commit_cluster(txn, &coord)?;
            Ok(total)
        });
        match result {
            Ok(n) => Ok(n),
            Err(e) => {
                // Never-committed DV uploads go straight to the reaper
                // (crash-modeling faults excepted; the leak scan owns
                // those).
                self.abort_uncommitted(uploaded, &e);
                Err(e)
            }
        }
    }

    /// UPDATE `table` SET `col = value, …` WHERE `predicate`: a delete
    /// and an insert (§2.3) staged in ONE transaction with a single
    /// cluster commit — no schedule ever exposes the
    /// deleted-but-not-reinserted intermediate state, and a crash
    /// between the two phases rolls both back.
    pub fn update_where(
        &self,
        table: &str,
        predicate: &Predicate,
        set: &[(usize, Value)],
    ) -> Result<u64> {
        self.admit_write()?;
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let t = txn
            .snapshot()
            .table_by_name(table)
            .cloned()
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        Self::check_dml_allowed(&t, table)?;
        txn.observe(t.oid);

        // Read the matching rows (full rows, all columns) from the
        // transaction's own snapshot, apply SET, and re-validate.
        let plan = Plan::scan(ScanSpec::new(table).predicate(predicate.clone()).global());
        let provider = self.dml_provider(&coord, Arc::new(txn.snapshot().clone()));
        let mut rows = eon_exec::execute(&plan, &provider)?;
        if rows.is_empty() {
            return Ok(0);
        }
        for row in &mut rows {
            for (col, v) in set {
                row[*col] = v.clone();
            }
            t.schema.check_row(row)?;
        }
        let n = rows.len() as u64;

        let mut uploaded = Vec::new();
        let result = (|| {
            let total =
                self.stage_delete_vectors(&mut txn, &coord, table, predicate, &mut uploaded)?;
            debug_assert_eq!(total, n, "scan and tombstone row counts agree");
            let writers = self.stage_load(&mut txn, &coord, &t, &rows, None, &mut uploaded)?;
            // Crash site: every DV and container is uploaded; dying
            // here must leave the table byte-identical to before the
            // UPDATE.
            self.config.faults.hit(fault_site::DML_PRE_COMMIT)?;
            self.commit_staged_write(txn, &coord, &writers)
        })();
        match result {
            Ok(_) => Ok(n),
            Err(e) => {
                self.abort_uncommitted(uploaded, &e);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use crate::query::SessionOpts;
    use eon_columnar::pruning::CmpOp;
    use eon_columnar::Projection;
    use eon_exec::{AggSpec, Expr, SortKey};
    use eon_storage::MemFs;
    use eon_types::schema;
    use std::sync::Arc;

    fn db_loaded() -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("price", Int)];
        db.create_table(
            "t",
            s.clone(),
            vec![Projection::super_projection("p", &s, &[0], &[0])],
        )
        .unwrap();
        db.copy_into(
            "t",
            (0..100).map(|i| vec![Value::Int(i), Value::Int(i * 10)]).collect(),
        )
        .unwrap();
        db
    }

    fn count_all(db: &EonDb) -> i64 {
        let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()]);
        db.query(&plan).unwrap()[0][0].as_int().unwrap()
    }

    #[test]
    fn delete_removes_matching_rows() {
        let db = db_loaded();
        let n = db
            .delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 10i64))
            .unwrap();
        assert_eq!(n, 10);
        assert_eq!(count_all(&db), 90);
        // Idempotent second delete finds nothing.
        assert_eq!(
            db.delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 10i64)).unwrap(),
            0
        );
    }

    #[test]
    fn delete_everything() {
        let db = db_loaded();
        assert_eq!(db.delete_where("t", &Predicate::True).unwrap(), 100);
        assert_eq!(count_all(&db), 0);
    }

    #[test]
    fn deleted_rows_invisible_with_cache_bypass_too() {
        let db = db_loaded();
        db.delete_where("t", &Predicate::eq(0, 5i64)).unwrap();
        let plan = Plan::scan(ScanSpec::new("t").predicate(Predicate::eq(0, 5i64)));
        let opts = SessionOpts {
            bypass_cache: true,
            ..Default::default()
        };
        assert!(db.query_with(&plan, &opts).unwrap().is_empty());
    }

    #[test]
    fn update_rewrites_rows() {
        let db = db_loaded();
        let n = db
            .update_where(
                "t",
                &Predicate::eq(0, 7i64),
                &[(1, Value::Int(9999))],
            )
            .unwrap();
        assert_eq!(n, 1);
        let plan = Plan::scan(ScanSpec::new("t").predicate(Predicate::eq(0, 7i64)))
            .sort(vec![SortKey::asc(0)]);
        let rows = db.query(&plan).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(7), Value::Int(9999)]]);
        assert_eq!(count_all(&db), 100); // no net row change
    }

    #[test]
    fn aggregate_respects_deletes() {
        let db = db_loaded();
        let sum_before: i64 = (0..100).map(|i| i * 10).sum();
        let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::sum(Expr::col(1))]);
        assert_eq!(db.query(&plan).unwrap()[0][0], Value::Int(sum_before));
        db.delete_where("t", &Predicate::cmp(0, CmpOp::Ge, 50i64)).unwrap();
        let sum_after: i64 = (0..50).map(|i| i * 10).sum();
        assert_eq!(db.query(&plan).unwrap()[0][0], Value::Int(sum_after));
    }

    #[test]
    fn delete_vectors_are_catalog_objects_on_shared_storage() {
        let db = db_loaded();
        db.delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 30i64)).unwrap();
        let snap = db.snapshot().unwrap();
        assert!(!snap.delete_vectors.is_empty());
        for dv in snap.delete_vectors.values() {
            assert!(db.shared().exists(&dv.key).unwrap());
            assert!(dv.deleted_rows > 0);
        }
    }
}
