//! DML: DELETE and UPDATE via delete vectors (paper §2.3, §4.5).
//!
//! "Deletes and updates are implemented with a tombstone-like mechanism
//! called a delete vector … An update is modeled as a delete followed
//! by an insert." Delete vectors are storage objects: written to shared
//! storage before commit like any data file, cached write-through, and
//! associated with the shard of the container they tombstone.

use eon_cache::CacheMode;
use eon_catalog::CatalogOp;
use eon_storage::fault::site as fault_site;
use eon_columnar::{DeleteVector, Predicate};
use eon_exec::crunch::CrunchSlice;
use eon_exec::{Plan, ScanSpec};
use eon_types::{EonError, Result, Value};

use crate::db::EonDb;
use crate::provider::NodeProvider;

impl EonDb {
    /// DELETE FROM `table` WHERE `predicate`. Returns rows deleted.
    pub fn delete_where(&self, table: &str, predicate: &Predicate) -> Result<u64> {
        self.ensure_viable()?;
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let snapshot = txn.snapshot().clone();
        let t = snapshot
            .table_by_name(table)
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        // §2.1: Live Aggregate Projections "trade-off … against
        // restrictions on how the base table can be updated" — a delete
        // vector cannot be applied to pre-aggregated rows.
        if t.projections.iter().any(|(_, p)| p.is_live_aggregate()) {
            return Err(EonError::Query(format!(
                "{table} has a live aggregate projection; DELETE/UPDATE are restricted"
            )));
        }
        txn.observe(t.oid);

        // Find matching positions per container (coordinator-side scan;
        // §4.5 would distribute this, which changes performance, not
        // outcomes).
        let provider = NodeProvider {
            node: coord.clone(),
            snapshot: std::sync::Arc::new(snapshot),
            my_shards: self.segment_shards(),
            all_shards: self.segment_shards(),
            replica_shard: self.replica_shard(),
            cache_mode: CacheMode::Normal,
            crunch: None,
            scan: self.scan_options(&coord, None),
        };
        let hits = provider.matching_positions(table, predicate)?;
        let mut total = 0u64;
        for (container_oid, shard, positions) in hits {
            total += positions.len() as u64;
            let dv = DeleteVector::new(positions);
            let key = coord.next_sid().object_key_with("dv");
            // Crash site: dies between delete-vector uploads, orphaning
            // any DV files already on shared storage.
            self.config.faults.hit(fault_site::DML_UPLOAD)?;
            // Delete marks are files too: cache + upload before commit.
            coord.cache.put_through(&key, dv.encode())?;
            txn.push(CatalogOp::AddDeleteVector(eon_catalog::DeleteVectorMeta {
                oid: coord.catalog.next_oid(),
                key,
                container: container_oid,
                shard,
                deleted_rows: dv.len() as u64,
            }));
        }
        if total == 0 {
            return Ok(0);
        }
        // Crash site: delete vectors uploaded, commit never runs — the
        // deletes must stay invisible and the DV files get reclaimed.
        self.config.faults.hit(fault_site::DML_PRE_COMMIT)?;
        self.commit_cluster(txn, &coord)?;
        Ok(total)
    }

    /// UPDATE `table` SET `col = value, …` WHERE `predicate`: delete
    /// then insert (§2.3).
    pub fn update_where(
        &self,
        table: &str,
        predicate: &Predicate,
        set: &[(usize, Value)],
    ) -> Result<u64> {
        self.ensure_viable()?;
        // Read the matching rows first (full rows, all columns).
        let plan = Plan::scan(ScanSpec::new(table).predicate(predicate.clone()).global());
        let mut rows = {
            let coord = self.pick_coordinator()?;
            let provider = NodeProvider {
                node: coord.clone(),
                snapshot: coord.catalog.snapshot(),
                my_shards: self.segment_shards(),
                all_shards: self.segment_shards(),
                replica_shard: self.replica_shard(),
                cache_mode: CacheMode::Normal,
                crunch: None,
                scan: self.scan_options(&coord, None),
            };
            let slice = CrunchSlice::all();
            let _ = slice;
            eon_exec::execute(&plan, &provider)?
        };
        if rows.is_empty() {
            return Ok(0);
        }
        for row in &mut rows {
            for (col, v) in set {
                row[*col] = v.clone();
            }
        }
        let n = self.delete_where(table, predicate)?;
        self.copy_into(table, rows)?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use crate::query::SessionOpts;
    use eon_columnar::pruning::CmpOp;
    use eon_columnar::Projection;
    use eon_exec::{AggSpec, Expr, SortKey};
    use eon_storage::MemFs;
    use eon_types::schema;
    use std::sync::Arc;

    fn db_loaded() -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("price", Int)];
        db.create_table(
            "t",
            s.clone(),
            vec![Projection::super_projection("p", &s, &[0], &[0])],
        )
        .unwrap();
        db.copy_into(
            "t",
            (0..100).map(|i| vec![Value::Int(i), Value::Int(i * 10)]).collect(),
        )
        .unwrap();
        db
    }

    fn count_all(db: &EonDb) -> i64 {
        let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()]);
        db.query(&plan).unwrap()[0][0].as_int().unwrap()
    }

    #[test]
    fn delete_removes_matching_rows() {
        let db = db_loaded();
        let n = db
            .delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 10i64))
            .unwrap();
        assert_eq!(n, 10);
        assert_eq!(count_all(&db), 90);
        // Idempotent second delete finds nothing.
        assert_eq!(
            db.delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 10i64)).unwrap(),
            0
        );
    }

    #[test]
    fn delete_everything() {
        let db = db_loaded();
        assert_eq!(db.delete_where("t", &Predicate::True).unwrap(), 100);
        assert_eq!(count_all(&db), 0);
    }

    #[test]
    fn deleted_rows_invisible_with_cache_bypass_too() {
        let db = db_loaded();
        db.delete_where("t", &Predicate::eq(0, 5i64)).unwrap();
        let plan = Plan::scan(ScanSpec::new("t").predicate(Predicate::eq(0, 5i64)));
        let opts = SessionOpts {
            bypass_cache: true,
            ..Default::default()
        };
        assert!(db.query_with(&plan, &opts).unwrap().is_empty());
    }

    #[test]
    fn update_rewrites_rows() {
        let db = db_loaded();
        let n = db
            .update_where(
                "t",
                &Predicate::eq(0, 7i64),
                &[(1, Value::Int(9999))],
            )
            .unwrap();
        assert_eq!(n, 1);
        let plan = Plan::scan(ScanSpec::new("t").predicate(Predicate::eq(0, 7i64)))
            .sort(vec![SortKey::asc(0)]);
        let rows = db.query(&plan).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(7), Value::Int(9999)]]);
        assert_eq!(count_all(&db), 100); // no net row change
    }

    #[test]
    fn aggregate_respects_deletes() {
        let db = db_loaded();
        let sum_before: i64 = (0..100).map(|i| i * 10).sum();
        let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::sum(Expr::col(1))]);
        assert_eq!(db.query(&plan).unwrap()[0][0], Value::Int(sum_before));
        db.delete_where("t", &Predicate::cmp(0, CmpOp::Ge, 50i64)).unwrap();
        let sum_after: i64 = (0..50).map(|i| i * 10).sum();
        assert_eq!(db.query(&plan).unwrap()[0][0], Value::Int(sum_after));
    }

    #[test]
    fn delete_vectors_are_catalog_objects_on_shared_storage() {
        let db = db_loaded();
        db.delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 30i64)).unwrap();
        let snap = db.snapshot().unwrap();
        assert!(!snap.delete_vectors.is_empty());
        for dv in snap.delete_vectors.values() {
            assert!(db.shared().exists(&dv.key).unwrap());
            assert!(dv.deleted_rows > 0);
        }
    }
}
