//! Live Aggregate Projection query rewriting (paper §2.1: LAPs "can be
//! used to dramatically speed up query performance for a variety of
//! aggregation … operations").
//!
//! An `Aggregate` whose input is a plain unfiltered scan, whose group-by
//! matches a LAP's group columns, and whose aggregates are all
//! maintained by that LAP, is rewritten to aggregate *over the LAP's
//! pre-computed rows* instead: SUM over partial sums, MIN over partial
//! minima, and COUNT(*) as the SUM of partial counts. The outer
//! aggregate stays in the plan because LAP rows are *partial* — each
//! load batch contributes one row per (group, shard) — and because the
//! distributed merge needs it anyway.

use eon_catalog::CatalogState;
use eon_columnar::{LapFunc, Predicate};
use eon_exec::{AggFunc, AggSpec, Expr, Plan, ScanSpec};

/// Rewrite every eligible aggregate in the plan to read from a matching
/// Live Aggregate Projection. Non-matching nodes pass through.
pub fn rewrite_for_laps(plan: &Plan, snapshot: &CatalogState) -> Plan {
    match plan {
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            if let Plan::Scan(spec) = &**input {
                if let Some(rewritten) = try_rewrite(spec, group_by, aggs, snapshot) {
                    return rewritten;
                }
            }
            Plan::Aggregate {
                input: Box::new(rewrite_for_laps(input, snapshot)),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            }
        }
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(rewrite_for_laps(input, snapshot)),
            predicate: predicate.clone(),
        },
        Plan::Project {
            input,
            exprs,
            names,
        } => Plan::Project {
            input: Box::new(rewrite_for_laps(input, snapshot)),
            exprs: exprs.clone(),
            names: names.clone(),
        },
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => Plan::Join {
            left: Box::new(rewrite_for_laps(left, snapshot)),
            right: Box::new(rewrite_for_laps(right, snapshot)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            kind: *kind,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(rewrite_for_laps(input, snapshot)),
            keys: keys.clone(),
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(rewrite_for_laps(input, snapshot)),
            n: *n,
        },
        Plan::Scan(_) => plan.clone(),
    }
}

fn try_rewrite(
    spec: &ScanSpec,
    group_by: &[usize],
    aggs: &[AggSpec],
    snapshot: &CatalogState,
) -> Option<Plan> {
    // Only plain full scans qualify: a pushed-down predicate filters
    // base rows, which pre-aggregated rows cannot replicate.
    if spec.predicate != Predicate::True || spec.projection.is_some() {
        return None;
    }
    let table = snapshot.table_by_name(&spec.table)?;
    // Scan-output index → table column index.
    let to_table = |scan_idx: usize| -> Option<usize> {
        match &spec.columns {
            Some(cols) => cols.get(scan_idx).copied(),
            None => Some(scan_idx),
        }
    };
    let group_table: Vec<usize> = group_by
        .iter()
        .map(|&g| to_table(g))
        .collect::<Option<_>>()?;

    // What each aggregate needs from a LAP: (function, table column).
    let requirements: Vec<(LapFunc, Option<usize>)> = aggs
        .iter()
        .map(|a| {
            let source = match &a.expr {
                Expr::Col(c) => to_table(*c),
                _ => None,
            };
            match a.func {
                AggFunc::Sum => Some((LapFunc::Sum, Some(source?))),
                AggFunc::Min => Some((LapFunc::Min, Some(source?))),
                AggFunc::Max => Some((LapFunc::Max, Some(source?))),
                AggFunc::CountStar => Some((LapFunc::CountStar, None)),
                _ => None, // Avg / Count(col) / distinct: base only
            }
        })
        .collect::<Option<_>>()?;

    // Find a LAP matching the grouping exactly and carrying every
    // required aggregate.
    for (_, proj) in &table.projections {
        let Some(lap) = &proj.live_aggregate else {
            continue;
        };
        if lap.group_by != group_table {
            continue;
        }
        let g = lap.group_by.len();
        let mut new_aggs = Vec::with_capacity(aggs.len());
        let mut all_found = true;
        for (want_f, want_col) in &requirements {
            let pos = lap.aggs.iter().position(|(f, c)| {
                f == want_f && want_col.map(|w| *c == w).unwrap_or(*f == LapFunc::CountStar)
            });
            match pos {
                Some(j) => {
                    let col = Expr::col(g + j);
                    new_aggs.push(match want_f {
                        LapFunc::Sum => AggSpec::sum(col),
                        LapFunc::Min => AggSpec::min(col),
                        LapFunc::Max => AggSpec::max(col),
                        // Partial counts merge by summation.
                        LapFunc::CountStar => AggSpec::sum(col),
                    });
                }
                None => {
                    all_found = false;
                    break;
                }
            }
        }
        if !all_found {
            continue;
        }
        let mut lap_scan = ScanSpec::new(spec.table.clone()).projection(proj.name.clone());
        lap_scan.distribute = spec.distribute;
        return Some(Plan::Scan(lap_scan).aggregate((0..g).collect(), new_aggs));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use crate::db::EonDb;
    use eon_columnar::Projection;
    use eon_storage::MemFs;
    use eon_types::{schema, Value};
    use std::sync::Arc;

    fn db_with_lap() -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("grp", Int), ("v", Int)];
        db.create_table(
            "t",
            s.clone(),
            vec![
                Projection::super_projection("t_super", &s, &[0], &[0]),
                Projection::live_aggregate(
                    "t_lap",
                    &[1],
                    vec![
                        (LapFunc::Sum, 2),
                        (LapFunc::Min, 2),
                        (LapFunc::Max, 2),
                        (LapFunc::CountStar, 0),
                    ],
                ),
            ],
        )
        .unwrap();
        db
    }

    fn grouped_plan() -> Plan {
        Plan::scan(ScanSpec::new("t")).aggregate(
            vec![1],
            vec![
                AggSpec::sum(Expr::col(2)),
                AggSpec::min(Expr::col(2)),
                AggSpec::max(Expr::col(2)),
                AggSpec::count_star(),
            ],
        )
    }

    #[test]
    fn rewrite_targets_the_lap() {
        let db = db_with_lap();
        let snap = db.snapshot().unwrap();
        let rewritten = rewrite_for_laps(&grouped_plan(), &snap);
        let Plan::Aggregate { input, .. } = &rewritten else {
            panic!("not an aggregate")
        };
        let Plan::Scan(spec) = &**input else { panic!("not a scan") };
        assert_eq!(spec.projection.as_deref(), Some("t_lap"));
    }

    #[test]
    fn predicate_blocks_rewrite() {
        let db = db_with_lap();
        let snap = db.snapshot().unwrap();
        let plan = Plan::scan(
            ScanSpec::new("t").predicate(Predicate::eq(0, 1i64)),
        )
        .aggregate(vec![1], vec![AggSpec::sum(Expr::col(2))]);
        assert_eq!(rewrite_for_laps(&plan, &snap), plan);
    }

    #[test]
    fn avg_blocks_rewrite() {
        let db = db_with_lap();
        let snap = db.snapshot().unwrap();
        let plan = Plan::scan(ScanSpec::new("t"))
            .aggregate(vec![1], vec![AggSpec::avg(Expr::col(2))]);
        assert_eq!(rewrite_for_laps(&plan, &snap), plan);
    }

    #[test]
    fn wrong_grouping_blocks_rewrite() {
        let db = db_with_lap();
        let snap = db.snapshot().unwrap();
        let plan = Plan::scan(ScanSpec::new("t"))
            .aggregate(vec![0], vec![AggSpec::sum(Expr::col(2))]);
        assert_eq!(rewrite_for_laps(&plan, &snap), plan);
    }

    #[test]
    fn lap_answers_match_base_across_batches() {
        let db = db_with_lap();
        // Several load batches → several partial rows per group.
        for batch in 0..4i64 {
            db.copy_into(
                "t",
                (0..500)
                    .map(|i| {
                        vec![
                            Value::Int(batch * 500 + i),
                            Value::Int(i % 9),
                            Value::Int(i * 3 - 50),
                        ]
                    })
                    .collect(),
            )
            .unwrap();
        }
        let base = Plan::scan(ScanSpec::new("t").projection("t_super")).aggregate(
            vec![1],
            vec![
                AggSpec::sum(Expr::col(2)),
                AggSpec::min(Expr::col(2)),
                AggSpec::max(Expr::col(2)),
                AggSpec::count_star(),
            ],
        );
        let mut want = db.query(&base).unwrap();
        want.sort();
        let mut got = db.query(&grouped_plan()).unwrap();
        got.sort();
        assert_eq!(got, want);

        // And the LAP really holds far fewer rows than the base table.
        let snap = db.snapshot().unwrap();
        let lap_oid = snap
            .tables
            .values()
            .next()
            .unwrap()
            .projections
            .iter()
            .find(|(_, p)| p.is_live_aggregate())
            .unwrap()
            .0;
        let lap_rows: u64 = snap
            .containers
            .values()
            .filter(|c| c.projection == lap_oid)
            .map(|c| c.rows)
            .sum();
        assert!(lap_rows <= 9 * 3 * 4, "lap has {lap_rows} rows");
    }

    #[test]
    fn deletes_are_rejected_with_lap() {
        let db = db_with_lap();
        db.copy_into("t", vec![vec![Value::Int(1), Value::Int(0), Value::Int(5)]])
            .unwrap();
        assert!(db.delete_where("t", &Predicate::True).is_err());
        assert!(db
            .update_where("t", &Predicate::True, &[(2, Value::Int(0))])
            .is_err());
    }
}
