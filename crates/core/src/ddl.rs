//! DDL: tables, projections, ADD COLUMN under OCC (§6.3).

use eon_catalog::{CatalogOp, Table};
use eon_columnar::Projection;
use eon_types::{EonError, Field, Oid, Result, Value};

use crate::db::EonDb;

impl EonDb {
    /// CREATE TABLE with a set of projections. Every table needs at
    /// least one projection — it is the only physical data structure
    /// (§2.1). Convenience: pass the output of
    /// [`Projection::super_projection`] / [`Projection::replicated`].
    pub fn create_table(
        &self,
        name: &str,
        schema: eon_types::Schema,
        projections: Vec<Projection>,
    ) -> Result<Oid> {
        if projections.is_empty() {
            return Err(EonError::Catalog(
                "a table needs at least one projection".into(),
            ));
        }
        self.ensure_viable()?;
        let coord = self.pick_coordinator()?;
        let table_oid = coord.catalog.next_oid();
        let mut txn = coord.catalog.begin();
        let defaults = vec![Value::Null; schema.len()];
        let projections: Vec<(Oid, Projection)> = projections
            .into_iter()
            .map(|p| {
                p.validate(&schema)?;
                Ok((coord.catalog.next_oid(), p))
            })
            .collect::<Result<_>>()?;
        txn.push(CatalogOp::CreateTable(Table {
            oid: table_oid,
            name: name.to_owned(),
            schema,
            projections,
            defaults,
        }));
        self.commit_cluster(txn, &coord)?;
        Ok(table_oid)
    }

    /// CREATE PROJECTION on an existing table. New projections start
    /// empty; a production system would backfill from an existing
    /// projection (refresh), which `copy_into` effectively does for
    /// subsequent loads.
    pub fn create_projection(&self, table: &str, projection: Projection) -> Result<Oid> {
        self.ensure_viable()?;
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let t = txn
            .snapshot()
            .table_by_name(table)
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        let table_oid = t.oid;
        projection.validate(&t.schema)?;
        let proj_oid = coord.catalog.next_oid();
        txn.push(CatalogOp::AddProjection {
            table: table_oid,
            oid: proj_oid,
            projection,
        });
        self.commit_cluster(txn, &coord)?;
        Ok(proj_oid)
    }

    /// ALTER TABLE … ADD COLUMN with a default, the §6.3 OCC showcase:
    /// metadata is prepared against a snapshot without holding the
    /// global catalog lock; the write set validates at commit and the
    /// transaction rolls back on conflict.
    pub fn add_column(&self, table: &str, field: Field, default: Value) -> Result<()> {
        self.ensure_viable()?;
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let t = txn
            .snapshot()
            .table_by_name(table)
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        let table_oid = t.oid;
        txn.push(CatalogOp::AddColumn {
            table: table_oid,
            field,
            default,
        });
        self.commit_cluster(txn, &coord)
            .map(|_| ())
    }

    /// `copy_table` (§5.1): create `dst` as a snapshot copy of `src`
    /// **without copying any data** — the new table's containers and
    /// delete vectors reference the *same* shared-storage files, which
    /// is exactly why SIDs are globally unique and why file deletion
    /// reference-counts catalog references (§6.5). Copy-on-write
    /// follows naturally: subsequent loads/deletes against either table
    /// create new objects without touching the shared ones.
    pub fn copy_table(&self, src: &str, dst: &str) -> Result<Oid> {
        self.ensure_viable()?;
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let t = txn
            .snapshot()
            .table_by_name(src)
            .cloned()
            .ok_or_else(|| EonError::UnknownTable(src.to_owned()))?;
        txn.observe(t.oid);

        // New table object with fresh OIDs but identical definitions.
        let dst_oid = coord.catalog.next_oid();
        let proj_map: Vec<(Oid, Oid, Projection)> = t
            .projections
            .iter()
            .map(|(old, p)| (*old, coord.catalog.next_oid(), p.clone()))
            .collect();
        txn.push(CatalogOp::CreateTable(Table {
            oid: dst_oid,
            name: dst.to_owned(),
            schema: t.schema.clone(),
            projections: proj_map.iter().map(|(_, new, p)| (*new, p.clone())).collect(),
            defaults: t.defaults.clone(),
        }));

        // Containers + delete vectors referencing the same files.
        let snapshot = txn.snapshot().clone();
        for (old_proj, new_proj, _) in &proj_map {
            for c in snapshot.containers_for_projection(*old_proj) {
                let new_container = coord.catalog.next_oid();
                txn.push(CatalogOp::AddContainer(eon_catalog::ContainerMeta {
                    oid: new_container,
                    projection: *new_proj,
                    table: dst_oid,
                    ..c.clone()
                }));
                for dv in snapshot.delete_vectors_for(c.oid) {
                    txn.push(CatalogOp::AddDeleteVector(eon_catalog::DeleteVectorMeta {
                        oid: coord.catalog.next_oid(),
                        container: new_container,
                        ..dv.clone()
                    }));
                }
            }
        }
        self.commit_cluster(txn, &coord)?;
        Ok(dst_oid)
    }

    /// DROP TABLE. Storage files become deletion candidates via the
    /// reaper (§6.5) once no query references them.
    pub fn drop_table(&self, table: &str) -> Result<()> {
        self.ensure_viable()?;
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let t = txn
            .snapshot()
            .table_by_name(table)
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        let oid = t.oid;
        txn.push(CatalogOp::DropTable(oid));
        self.commit_cluster(txn, &coord).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_storage::MemFs;
    use eon_types::{schema, DataType};
    use std::sync::Arc;

    fn db() -> Arc<EonDb> {
        EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap()
    }

    fn sales_schema() -> eon_types::Schema {
        schema![("id", Int), ("cust", Str), ("price", Int)]
    }

    #[test]
    fn create_table_visible_on_all_nodes() {
        let db = db();
        let s = sales_schema();
        db.create_table(
            "sales",
            s.clone(),
            vec![Projection::super_projection("sales_p", &s, &[0], &[0])],
        )
        .unwrap();
        for node in db.membership().all() {
            assert!(node.catalog.snapshot().table_by_name("sales").is_some());
        }
    }

    #[test]
    fn table_needs_projection() {
        let db = db();
        assert!(db.create_table("t", sales_schema(), vec![]).is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = db();
        let s = sales_schema();
        let p = || vec![Projection::super_projection("p", &s, &[0], &[0])];
        db.create_table("t", s.clone(), p()).unwrap();
        assert!(db.create_table("t", s.clone(), p()).is_err());
    }

    #[test]
    fn add_column_and_projection() {
        let db = db();
        let s = sales_schema();
        db.create_table(
            "sales",
            s.clone(),
            vec![Projection::super_projection("p", &s, &[0], &[0])],
        )
        .unwrap();
        db.add_column("sales", Field::new("region", DataType::Str), Value::Str("NA".into()))
            .unwrap();
        let snap = db.snapshot().unwrap();
        let t = snap.table_by_name("sales").unwrap();
        assert_eq!(t.schema.len(), 4);
        assert_eq!(t.defaults[3], Value::Str("NA".into()));
        // Super-projection grew with the table.
        assert_eq!(t.projections[0].1.columns.len(), 4);
    }

    #[test]
    fn drop_table_removes_everywhere() {
        let db = db();
        let s = sales_schema();
        db.create_table(
            "sales",
            s.clone(),
            vec![Projection::super_projection("p", &s, &[0], &[0])],
        )
        .unwrap();
        db.drop_table("sales").unwrap();
        for node in db.membership().all() {
            assert!(node.catalog.snapshot().table_by_name("sales").is_none());
        }
        assert!(db.drop_table("sales").is_err());
    }
}

#[cfg(test)]
mod copy_table_tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_columnar::pruning::CmpOp;
    use eon_columnar::Predicate;
    use eon_exec::{AggSpec, Plan, ScanSpec};
    use eon_storage::MemFs;
    use eon_types::{schema, Value};
    use std::sync::Arc;

    fn db_loaded() -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("v", Int)];
        db.create_table(
            "src",
            s.clone(),
            vec![Projection::super_projection("p", &s, &[0], &[0])],
        )
        .unwrap();
        db.copy_into(
            "src",
            (0..500).map(|i| vec![Value::Int(i), Value::Int(i % 7)]).collect(),
        )
        .unwrap();
        db
    }

    fn count(db: &EonDb, table: &str) -> i64 {
        let plan = Plan::scan(ScanSpec::new(table)).aggregate(vec![], vec![AggSpec::count_star()]);
        db.query(&plan).unwrap()[0][0].as_int().unwrap()
    }

    #[test]
    fn copy_shares_files_without_copying_data() {
        let db = db_loaded();
        let files_before = db.shared().list("data/").unwrap().len();
        db.copy_table("src", "dst").unwrap();
        // Zero new data files: the copy is pure metadata (§5.1).
        assert_eq!(db.shared().list("data/").unwrap().len(), files_before);
        assert_eq!(count(&db, "dst"), 500);
        assert_eq!(count(&db, "src"), 500);
        // Same keys, distinct catalog objects.
        let snap = db.snapshot().unwrap();
        let mut keys: Vec<&str> = snap.containers.values().map(|c| c.key.as_str()).collect();
        keys.sort();
        let distinct: std::collections::HashSet<&&str> = keys.iter().collect();
        assert_eq!(keys.len(), distinct.len() * 2, "each file referenced twice");
    }

    #[test]
    fn drop_of_one_table_keeps_shared_files() {
        let db = db_loaded();
        db.copy_table("src", "dst").unwrap();
        db.drop_table("src").unwrap();
        db.sync_metadata(1_000).unwrap();
        let reaped = db.reap_files().unwrap();
        assert!(reaped.is_empty(), "shared files must survive: {reaped:?}");
        assert_eq!(count(&db, "dst"), 500);

        // Dropping the last reference releases the files.
        db.drop_table("dst").unwrap();
        db.sync_metadata(2_000).unwrap();
        let reaped = db.reap_files().unwrap();
        assert!(!reaped.is_empty());
        assert!(db.shared().list("data/").unwrap().is_empty());
    }

    #[test]
    fn copies_diverge_copy_on_write() {
        let db = db_loaded();
        db.copy_table("src", "dst").unwrap();
        // Mutate dst only: delete vectors attach to dst's containers.
        db.delete_where("dst", &Predicate::cmp(0, CmpOp::Lt, 100i64)).unwrap();
        assert_eq!(count(&db, "dst"), 400);
        assert_eq!(count(&db, "src"), 500, "src unaffected");
        // Load into src only.
        db.copy_into("src", (1000..1100).map(|i| vec![Value::Int(i), Value::Int(0)]).collect())
            .unwrap();
        assert_eq!(count(&db, "src"), 600);
        assert_eq!(count(&db, "dst"), 400);
    }

    #[test]
    fn copy_preserves_existing_delete_vectors() {
        let db = db_loaded();
        db.delete_where("src", &Predicate::cmp(0, CmpOp::Lt, 50i64)).unwrap();
        db.copy_table("src", "dst").unwrap();
        assert_eq!(count(&db, "dst"), 450);
    }

    #[test]
    fn copy_missing_source_fails() {
        let db = db_loaded();
        assert!(db.copy_table("ghost", "dst").is_err());
        // Duplicate destination fails too.
        db.copy_table("src", "dst").unwrap();
        assert!(db.copy_table("src", "dst").is_err());
    }
}
