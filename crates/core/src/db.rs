//! The [`EonDb`] handle: cluster bootstrap and the commit protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use eon_catalog::{CatalogOp, CatalogState, ShardDef, ShardKind, SubState, Subscription, Txn, TxnRecord};
use eon_cluster::{Membership, NodeRuntime};
use eon_shard::rebalance_plan;
use eon_storage::{BreakerConfig, CircuitBreaker, SharedFs};
use eon_types::{EonError, HashRange, NodeId, Result, ShardId, TxnVersion};

use crate::config::EonConfig;
use crate::maintenance::Reaper;

/// An Eon-mode database over a shared storage.
pub struct EonDb {
    pub(crate) shared: SharedFs,
    pub(crate) config: EonConfig,
    pub(crate) membership: Membership,
    /// Hex incarnation id; changes on revive (§3.5).
    pub(crate) incarnation: Mutex<String>,
    /// Serializes cluster commits (stand-in for the distributed commit
    /// protocol; Vertica's global catalog lock plays the same role).
    pub(crate) commit_lock: Mutex<()>,
    /// Session counter: varies participant selection per query (§4.1).
    pub(crate) session_counter: AtomicU64,
    /// Coordinator rotation. Deliberately separate from
    /// `session_counter`: if seeds and rotation shared one counter,
    /// every seed draw would skip a node in the rotation and fairness
    /// would depend on how many seeds each operation happens to draw.
    pub(crate) coordinator_counter: AtomicU64,
    pub(crate) next_node_id: AtomicU64,
    pub(crate) instance_seed: AtomicU64,
    pub(crate) reaper: Reaper,
    /// Per-subcluster admission pools (DESIGN.md "Admission control").
    pub(crate) admission: crate::admission::AdmissionControl,
    /// S3 circuit breaker (DESIGN.md "Failure detection & degraded
    /// modes"). Shared with the `RetryFs` wrapper around `shared`;
    /// `None` when disabled via config.
    pub(crate) breaker: Option<Arc<CircuitBreaker>>,
    /// Self-healing supervisor state: the failure detector plus repair
    /// bookkeeping, driven by [`EonDb::supervise_tick`].
    pub(crate) supervisor: Mutex<crate::supervisor::SupervisorState>,
    /// Group-commit accumulator (DESIGN.md "Group commit"); idle unless
    /// the window is non-zero.
    pub(crate) group_commit: crate::commit::GroupCommit,
    /// Live group-commit window, ticks (`EonConfig::commit_group_window`
    /// seeds it). Dynamic so a harness can bring the cluster up with
    /// serial commits and then enable batching for the workload under
    /// test — bootstrap DDL has no concurrency to amortize against and
    /// would otherwise wait out the whole window alone.
    pub(crate) commit_group_window: AtomicU64,
    /// Set when metadata divergence is detected (§3.4): a node applied
    /// a record in memory but could not persist it, or refused a record
    /// its peers accepted. A halted cluster reports `Down` from
    /// [`EonDb::cluster_health`] and admits nothing further.
    pub(crate) halted: Mutex<Option<String>>,
}

impl EonDb {
    /// Create a brand-new database on empty shared storage: commission
    /// nodes, define the shard layout (segment shards + one replica
    /// shard), and subscribe nodes via the ring rebalance.
    pub fn create(shared: SharedFs, config: EonConfig) -> Result<Arc<EonDb>> {
        assert!(config.num_nodes > 0 && config.num_shards > 0);
        // Uniform §5.3 retry loop around every shared-storage access;
        // its retry count lands in the database registry. The optional
        // circuit breaker gates the same wrapper and is shared with the
        // write-admission front door.
        let breaker = Self::build_breaker(&config);
        let shared = eon_storage::RetryFs::wrap_with_breaker(shared, &config.obs, breaker.clone());
        // Teach the store to answer `select` requests against ROS
        // containers (DESIGN.md "Pushdown execution"). Installed
        // unconditionally — the per-session pushdown knobs decide
        // whether scans actually issue selects.
        shared.install_select_engine(Arc::new(crate::pushdown::RosSelectEngine));
        let incarnation = format!("inc{:08x}", 0xe0ee_0000u32);
        let db = Arc::new(EonDb {
            shared: shared.clone(),
            membership: Membership::new(),
            incarnation: Mutex::new(incarnation.clone()),
            commit_lock: Mutex::new(()),
            session_counter: AtomicU64::new(1),
            coordinator_counter: AtomicU64::new(0),
            next_node_id: AtomicU64::new(config.num_nodes as u64),
            instance_seed: AtomicU64::new(1),
            reaper: Reaper::default(),
            admission: crate::admission::AdmissionControl::new(
                crate::admission::AdmissionLimits::from_config(&config),
                config.obs.clone(),
            ),
            breaker,
            supervisor: Mutex::new(crate::supervisor::SupervisorState::new(&config)),
            group_commit: crate::commit::GroupCommit::new(),
            commit_group_window: AtomicU64::new(config.commit_group_window),
            halted: Mutex::new(None),
            config,
        });
        for i in 0..db.config.num_nodes {
            let node = db.commission_node(NodeId(i as u64));
            db.membership.add(node);
        }

        // Bootstrap transaction: shard layout + subscriptions.
        let coord = db.membership.leader().expect("fresh cluster has nodes");
        let mut txn = coord.catalog.begin();
        txn.push(CatalogOp::DefineShards(db.shard_defs()));
        db.commit_cluster(txn, &coord)?;

        // Subscriptions: segment shards via the ring plan, replica
        // shard on every node; a fresh cluster has no metadata or cache
        // to transfer, so promote straight to ACTIVE.
        let mut txn = coord.catalog.begin();
        for op in rebalance_plan(
            &coord.catalog.snapshot(),
            &db.membership.up_ids(),
            db.config.k_safety,
        ) {
            let op = match op {
                CatalogOp::UpsertSubscription(mut s) => {
                    s.state = SubState::Active;
                    CatalogOp::UpsertSubscription(s)
                }
                other => other,
            };
            txn.push(op);
        }
        for node in db.membership.up_ids() {
            txn.push(CatalogOp::UpsertSubscription(Subscription {
                node,
                shard: db.replica_shard(),
                state: SubState::Active,
            }));
        }
        db.commit_cluster(txn, &coord)?;
        Ok(db)
    }

    pub fn config(&self) -> &EonConfig {
        &self.config
    }

    /// The database metrics registry (DESIGN.md "Observability").
    pub fn metrics(&self) -> &eon_obs::Registry {
        &self.config.obs
    }

    /// Admission-control introspection (DESIGN.md "Admission control"):
    /// tests and the bench harness read pool depths to prove sessions
    /// neither leak running counts nor park past their deadline.
    pub fn admission(&self) -> &crate::admission::AdmissionControl {
        &self.admission
    }

    pub fn shared(&self) -> &SharedFs {
        &self.shared
    }

    /// The S3 circuit breaker, when enabled (`EonConfig::breaker`).
    pub fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// Build the configured breaker (`None` when the threshold is 0).
    /// Shared by `create` and `revive`.
    pub(crate) fn build_breaker(config: &EonConfig) -> Option<Arc<CircuitBreaker>> {
        if config.breaker_failure_threshold == 0 {
            return None;
        }
        Some(CircuitBreaker::with_metrics(
            BreakerConfig {
                failure_threshold: config.breaker_failure_threshold,
                cooldown: config.breaker_cooldown,
                half_open_probes: config.breaker_half_open_probes,
            },
            &config.obs,
        ))
    }

    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    pub fn incarnation(&self) -> String {
        self.incarnation.lock().clone()
    }

    /// The replica shard holding replicated-projection storage (§3.1).
    pub fn replica_shard(&self) -> ShardId {
        ShardId(self.config.num_shards as u64)
    }

    /// Segment shard ids.
    pub fn segment_shards(&self) -> Vec<ShardId> {
        (0..self.config.num_shards as u64).map(ShardId).collect()
    }

    pub(crate) fn shard_defs(&self) -> Vec<ShardDef> {
        let mut defs: Vec<ShardDef> = HashRange::split_even(self.config.num_shards)
            .into_iter()
            .enumerate()
            .map(|(i, range)| ShardDef {
                id: ShardId(i as u64),
                kind: ShardKind::Segment,
                range,
            })
            .collect();
        defs.push(ShardDef {
            id: self.replica_shard(),
            kind: ShardKind::Replica,
            range: HashRange::full(),
        });
        defs
    }

    pub(crate) fn commission_node(&self, id: NodeId) -> Arc<NodeRuntime> {
        let seed = self.instance_seed.fetch_add(1, Ordering::Relaxed);
        let node = NodeRuntime::new(
            id,
            self.shared.clone(),
            &format!("{}/node{}", self.incarnation(), id.0),
            self.config.cache_bytes,
            self.config.exec_slots,
            seed,
        );
        node.set_faults(self.config.faults.clone());
        node.cache.set_single_flight(self.config.depot_single_flight);
        let label = format!("node{}", id.0);
        node.cache.attach_metrics(&self.config.obs, &label);
        node.slots.attach_metrics(&self.config.obs, &label);
        node
    }

    /// Scan-pipeline options for a session on `node`, built from
    /// config with the pool width clamped to the node's
    /// execution-slot budget (§4.2).
    pub(crate) fn scan_options(
        &self,
        node: &NodeRuntime,
        profile: Option<&eon_obs::QueryProfile>,
        cancel: Option<eon_types::CancelToken>,
    ) -> crate::provider::ScanOptions {
        let slots = node.slots.capacity().max(1);
        let workers = if self.config.scan_workers == 0 {
            slots
        } else {
            self.config.scan_workers.min(slots)
        };
        crate::provider::ScanOptions {
            workers,
            coalesce_gap: self.config.scan_coalesce_gap,
            late_materialization: self.config.scan_late_materialization,
            encoded_exec: !self.config.scan_decode_first,
            pushdown: self.config.pushdown,
            pushdown_max_selectivity: self.config.pushdown_max_selectivity,
            pushdown_min_bytes: self.config.pushdown_min_bytes,
            pushdown_max_groups: self.config.pushdown_max_groups,
            obs: self.config.obs.clone(),
            profile: profile.cloned(),
            cancel,
        }
    }

    /// Write-pool width for one load statement coordinated by `node`,
    /// clamped to the execution-slot budget (§4.2) like the scan pool.
    /// Armed fault plans force the serial path: which upload a one-shot
    /// crash site interrupts (and therefore which files a seeded chaos
    /// run orphans) must not depend on thread scheduling (DESIGN.md
    /// "Write pipeline").
    pub(crate) fn load_pool_width(&self, node: &NodeRuntime) -> usize {
        if self.config.faults.is_armed() {
            return 1;
        }
        let slots = node.slots.capacity().max(1);
        if self.config.load_workers == 0 {
            slots
        } else {
            self.config.load_workers.min(slots)
        }
    }

    /// Any up node, rotated by the session counter — clients connect to
    /// different nodes, and the connection target is the coordinator.
    pub(crate) fn pick_coordinator(&self) -> Result<Arc<NodeRuntime>> {
        let up = self.membership.up_nodes();
        if up.is_empty() {
            return Err(EonError::ClusterDown("no nodes up".into()));
        }
        let i = self.coordinator_counter.fetch_add(1, Ordering::Relaxed) as usize % up.len();
        Ok(up[i].clone())
    }

    /// Next session seed (drives assignment edge-order variation).
    pub(crate) fn next_session_seed(&self) -> u64 {
        self.session_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// The cluster commit protocol: commit on the coordinator (OCC
    /// validation, §6.3), persist to its local log, then distribute the
    /// record to every other up node (§3.2's eager metadata
    /// redistribution — all subscribers have the metadata at commit).
    /// Down nodes miss records and repair via re-subscription (§3.3).
    /// With a non-zero group window the statement instead joins the
    /// group-commit accumulator (DESIGN.md "Group commit").
    pub(crate) fn commit_cluster(
        &self,
        txn: Txn,
        coordinator: &Arc<NodeRuntime>,
    ) -> Result<TxnRecord> {
        if self.commit_group_window() > 0 {
            return self.commit_grouped(txn, coordinator.clone(), None);
        }
        let _g = self.commit_lock.lock();
        self.commit_cluster_locked(txn, coordinator)
    }

    /// The live group-commit accumulation window, in ticks (`0` =
    /// serial commit).
    pub fn commit_group_window(&self) -> u64 {
        self.commit_group_window.load(Ordering::Relaxed)
    }

    /// Change the group-commit window at runtime. `0` restores serial
    /// commit; statements already parked in the accumulator finish
    /// under the window they arrived with.
    pub fn set_commit_group_window(&self, ticks: u64) {
        self.commit_group_window.store(ticks, Ordering::Relaxed);
    }

    /// Record metadata divergence (§3.4: "the cluster shuts down" —
    /// once nodes disagree, serving anything risks wrong answers) and
    /// return the typed error. The halt flag makes every later
    /// admission fail via [`EonDb::cluster_health`].
    pub(crate) fn declare_divergence(&self, node: NodeId, e: &EonError) -> EonError {
        let msg = format!("metadata divergence on {node}: {e}");
        *self.halted.lock() = Some(msg.clone());
        EonError::ClusterDown(msg)
    }

    /// Simulated fixed durable-append cost (`EonConfig::
    /// commit_append_us`) — charged per log-file append so group commit
    /// has the fsync economics the real redo log has.
    pub(crate) fn charge_append_cost(&self) {
        if self.config.commit_append_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.config.commit_append_us));
        }
    }

    /// Commit with the lock already held (used by the load path, which
    /// re-validates subscription stability under the lock, §4.5).
    pub(crate) fn commit_cluster_locked(
        &self,
        txn: Txn,
        coordinator: &NodeRuntime,
    ) -> Result<TxnRecord> {
        // Collect the shared-storage keys this transaction's drops
        // *might* orphan — the snapshot still holds them. After apply
        // they are checked against the new state: `copy_table` can put
        // the same file under several tables (§5.1), so a key only
        // feeds the §6.5 reaper when its catalog reference count
        // actually reaches zero.
        let dropped_keys = Self::dropped_keys(&txn);
        let rec = coordinator.catalog.commit(txn)?;
        self.charge_append_cost();
        coordinator.store.append_local(&rec)?;
        let metrics = crate::commit::CommitMetrics::register(&self.config.obs);
        metrics.statements.inc();
        metrics.appends.inc();
        for node in self.membership.up_nodes() {
            if node.id == coordinator.id {
                continue;
            }
            // All up nodes advance in lockstep; failure here would mean
            // divergence, which §3.4 says must shut the cluster down.
            node.catalog
                .apply_committed(&rec)
                .map_err(|e| self.declare_divergence(node.id, &e))?;
            // A peer that applied in memory but cannot persist the
            // record is just as divergent: its next local recovery
            // would silently rewind behind the cluster. Same §3.4
            // classification — never a retryable storage error.
            self.charge_append_cost();
            self.config
                .faults
                .hit_node(eon_storage::fault::site::COMMIT_PEER_APPEND, node.id.0)
                .and_then(|()| node.store.append_local(&rec))
                .map_err(|e| self.declare_divergence(node.id, &e))?;
        }
        // Reference count (§6.5): only keys with no remaining catalog
        // reference become deletion candidates.
        let post = coordinator.catalog.snapshot();
        let orphaned: Vec<String> = dropped_keys
            .into_iter()
            .filter(|k| {
                !post.containers.values().any(|c| &c.key == k)
                    && !post.delete_vectors.values().any(|d| &d.key == k)
            })
            .collect();
        self.reaper.note_dropped(orphaned, rec.version);
        Ok(rec)
    }

    /// Shared-storage keys orphaned by a transaction's drop ops,
    /// resolved against the transaction's snapshot (before apply).
    pub(crate) fn dropped_keys(txn: &Txn) -> Vec<String> {
        let snap = txn.snapshot();
        let mut keys = Vec::new();
        for op in txn.ops() {
            match op {
                CatalogOp::DropContainer(oid) => {
                    if let Some(c) = snap.containers.get(oid) {
                        keys.push(c.key.clone());
                    }
                    for dv in snap.delete_vectors_for(*oid) {
                        keys.push(dv.key.clone());
                    }
                }
                CatalogOp::DropDeleteVector(oid) => {
                    if let Some(d) = snap.delete_vectors.get(oid) {
                        keys.push(d.key.clone());
                    }
                }
                CatalogOp::DropTable(oid) => {
                    for c in snap.containers.values().filter(|c| c.table == *oid) {
                        keys.push(c.key.clone());
                        for dv in snap.delete_vectors_for(c.oid) {
                            keys.push(dv.key.clone());
                        }
                    }
                }
                _ => {}
            }
        }
        keys
    }

    /// A consistent catalog snapshot (from any up node; they are in
    /// lockstep).
    pub fn snapshot(&self) -> Result<Arc<CatalogState>> {
        Ok(self.pick_coordinator()?.catalog.snapshot())
    }

    /// The global catalog version (§3.4).
    pub fn version(&self) -> TxnVersion {
        self.membership
            .up_nodes()
            .first()
            .map(|n| n.catalog.version())
            .unwrap_or(TxnVersion::ZERO)
    }

    /// §3.4 viability check; most public operations call this first.
    pub fn ensure_viable(&self) -> Result<()> {
        let snapshot = self
            .membership
            .up_nodes()
            .first()
            .map(|n| n.catalog.snapshot())
            .ok_or_else(|| EonError::ClusterDown("no nodes up".into()))?;
        self.membership.check_viable(&snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_storage::MemFs;

    fn db() -> Arc<EonDb> {
        EonDb::create(Arc::new(MemFs::new()), EonConfig::new(4, 3)).unwrap()
    }

    #[test]
    fn create_bootstraps_shards_and_subscriptions() {
        let db = db();
        let snap = db.snapshot().unwrap();
        assert_eq!(snap.shards.len(), 4); // 3 segment + 1 replica
        assert_eq!(snap.segment_shard_count(), 3);
        // Every segment shard has k+1 = 2 ACTIVE subscribers.
        for s in db.segment_shards() {
            assert_eq!(snap.subscribers_in(s, SubState::Active).len(), 2);
        }
        // Replica shard on all nodes.
        assert_eq!(
            snap.subscribers_in(db.replica_shard(), SubState::Active).len(),
            4
        );
        db.ensure_viable().unwrap();
    }

    #[test]
    fn all_nodes_share_catalog_version() {
        let db = db();
        let versions: Vec<TxnVersion> = db
            .membership
            .all()
            .iter()
            .map(|n| n.catalog.version())
            .collect();
        assert!(versions.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(db.version(), TxnVersion(2)); // shards + subscriptions
    }

    #[test]
    fn viability_fails_when_shard_uncovered() {
        let db = db();
        // Kill the two subscribers of shard 0 (ring layout: nodes 0,1).
        db.membership.get(NodeId(0)).unwrap().kill();
        db.membership.get(NodeId(1)).unwrap().kill();
        assert!(db.ensure_viable().is_err());
    }

    #[test]
    fn single_node_down_keeps_cluster_viable() {
        let db = db();
        db.membership.get(NodeId(0)).unwrap().kill();
        db.ensure_viable().unwrap();
    }

    /// Coordinator rotation is fair: N sessions on N up nodes land one
    /// coordinator each. Regression for the shared-counter bug where
    /// `next_session_seed` advanced the same counter as
    /// `pick_coordinator`, skipping nodes in the rotation.
    #[test]
    fn coordinator_rotation_visits_every_node() {
        let db = db();
        let n = db.membership.len() as u64;
        let mut hits = std::collections::HashMap::new();
        for _ in 0..n {
            // Interleave seed draws the way a real session does — with
            // the split counters they must not perturb the rotation.
            let _ = db.next_session_seed();
            let coord = db.pick_coordinator().unwrap();
            let _ = db.next_session_seed();
            *hits.entry(coord.id).or_insert(0u64) += 1;
        }
        for id in 0..n {
            assert_eq!(
                hits.get(&NodeId(id)).copied().unwrap_or(0),
                1,
                "node {id} should coordinate exactly once in one rotation ({hits:?})"
            );
        }
    }
}
