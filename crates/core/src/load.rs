//! Data load: the Fig 8 workflow, run through a parallel write
//! pipeline (DESIGN.md "Write pipeline").
//!
//! 1. ingest rows;
//! 2. split per projection by segmentation hash so each container holds
//!    exactly one shard's rows (§4.5) — each non-empty (projection,
//!    shard) bucket becomes one independent upload job;
//! 3. fan the jobs across a bounded write pool
//!    ([`crate::EonConfig::load_workers`], clamped to the §4.2
//!    execution-slot budget): each job sorts + encodes its rows, writes
//!    the container through the writer's cache (write-through, §5.2) —
//!    uploading to shared storage — and ships the bytes to the shard's
//!    other subscribers' caches concurrently so a node-down failover
//!    finds a warm cache;
//! 4. after the pool joins, mint catalog OIDs and push `AddContainer`
//!    ops in the fixed (projection, shard) job order — storage keys are
//!    pre-minted in that same order before the fan-out — so the
//!    committed catalog state is byte-identical to the serial path;
//! 5. commit, re-validating under the commit lock that every writer
//!    (segment *and* replica shard) still subscribes to the shard it
//!    wrote (§4.5's rollback rule).
//!
//! All data reaches shared storage *before* commit, so committed
//! transactions never lose files (§3.5). When a load fails *after*
//! uploading (a graceful rollback, not an injected crash), the
//! never-committed keys are handed to the §6.5 reaper as immediately
//! deletable instead of waiting for a manual leak scan.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use eon_catalog::{CatalogOp, ContainerMeta, SubState, Table, Txn};
use eon_cluster::NodeRuntime;
use eon_obs::{Counter, Histogram, QueryProfile, Registry};
use eon_storage::fault::site as fault_site;
use eon_columnar::{split_rows_by_shard, Projection, RosWriter};
use eon_shard::{select_participants, AssignmentProblem};
use eon_types::{EonError, NodeId, Oid, Result, ShardId, Value};

use crate::db::EonDb;

/// Registry handles for one node's write pipeline. All counters are
/// deterministic functions of the workload (how many containers, rows,
/// bytes a statement wrote); only the queue-wait histogram is
/// wall-clock.
pub(crate) struct LoadMetrics {
    pool_tasks: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    containers: Arc<Counter>,
    rows: Arc<Counter>,
    bytes: Arc<Counter>,
    peer_ships: Arc<Counter>,
    rollbacks: Arc<Counter>,
    rollback_orphans: Arc<Counter>,
}

impl LoadMetrics {
    pub(crate) fn register(registry: &Registry, node: &str) -> Self {
        let labels: &[(&str, &str)] = &[("node", node), ("subsystem", "load")];
        LoadMetrics {
            pool_tasks: registry.counter("load_pool_tasks_total", labels),
            queue_wait: registry.timing_histogram("load_pool_queue_wait_us", labels),
            containers: registry.counter("load_containers_written_total", labels),
            rows: registry.counter("load_rows_written_total", labels),
            bytes: registry.counter("load_bytes_uploaded_total", labels),
            peer_ships: registry.counter("load_peer_ships_total", labels),
            rollbacks: registry.counter("load_rollbacks_total", labels),
            rollback_orphans: registry.counter("load_rollback_orphans_total", labels),
        }
    }
}

/// One independent (projection, shard) upload of a load statement. The
/// storage key is pre-minted in job-build order so the committed state
/// (keys included) does not depend on pool scheduling.
pub(crate) struct LoadJob {
    proj: Projection,
    proj_oid: Oid,
    shard: ShardId,
    writer: Arc<NodeRuntime>,
    key: String,
    /// Taken exactly once by the worker that claims the job.
    rows: Mutex<Option<Vec<Vec<Value>>>>,
}

/// What an upload job leaves on shared storage: everything
/// [`ContainerMeta`] needs except the catalog OID, which is minted
/// after the pool joins (in job order) to keep OIDs identical to the
/// serial path.
pub(crate) struct StagedContainer {
    key: String,
    rows: u64,
    size_bytes: u64,
    col_minmax: Vec<Option<(Value, Value)>>,
}

/// The writers a staged load used, for §4.5 re-validation under the
/// commit lock. Cloned into the group-commit accumulator when the
/// statement parks as a batch member.
#[derive(Clone)]
pub(crate) struct LoadWriters {
    assignment: HashMap<ShardId, NodeId>,
    replica_writer: Option<NodeId>,
}

/// Fold base-table rows into a Live Aggregate Projection's layout:
/// one row per group — group values followed by aggregate values.
pub(crate) fn fold_live_aggregate(
    rows: &[Vec<Value>],
    lap: &eon_columnar::LiveAggregate,
) -> Vec<Vec<Value>> {
    use eon_columnar::LapFunc;
    let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = lap.group_by.iter().map(|&c| row[c].clone()).collect();
        let accs = groups.entry(key).or_insert_with(|| {
            lap.aggs
                .iter()
                .map(|(f, _)| match f {
                    LapFunc::CountStar => Value::Int(0),
                    _ => Value::Null,
                })
                .collect()
        });
        for (acc, (f, col)) in accs.iter_mut().zip(&lap.aggs) {
            let v = &row[*col];
            match f {
                LapFunc::CountStar => {
                    *acc = Value::Int(acc.as_int().unwrap_or(0) + 1);
                }
                _ if v.is_null() => {}
                LapFunc::Sum => {
                    *acc = match (&*acc, v) {
                        (Value::Null, x) => x.clone(),
                        (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
                        (a, b) => Value::Float(
                            a.as_float().unwrap_or(0.0) + b.as_float().unwrap_or(0.0),
                        ),
                    };
                }
                LapFunc::Min => {
                    if acc.is_null() || v < acc {
                        *acc = v.clone();
                    }
                }
                LapFunc::Max => {
                    if acc.is_null() || v > acc {
                        *acc = v.clone();
                    }
                }
            }
        }
    }
    let mut out: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs);
            key
        })
        .collect();
    out.sort();
    out
}

impl EonDb {
    /// Bulk-load rows into a table (COPY). Returns the number of rows
    /// loaded. Rows are validated against the schema; every projection
    /// of the table receives the data.
    pub fn copy_into(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64> {
        self.copy_into_inner(table, rows, None, None)
    }

    /// [`EonDb::copy_into`] with a cancellation token, checked at every
    /// write-pool job claim: a cancelled COPY stops uploading, rolls
    /// back, and hands any files that did reach shared storage to the
    /// §6.5 reaper.
    pub fn copy_into_cancellable(
        &self,
        table: &str,
        rows: Vec<Vec<Value>>,
        cancel: eon_types::CancelToken,
    ) -> Result<u64> {
        self.copy_into_inner(table, rows, None, Some(cancel))
    }

    /// COPY with an `EXPLAIN ANALYZE`-style [`QueryProfile`]: one
    /// `load_pipeline` span on the coordinator plus upload-fanout and
    /// commit sub-spans.
    pub fn copy_into_profiled(
        &self,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<(u64, QueryProfile)> {
        let profile = QueryProfile::new();
        let n = self.copy_into_inner(table, rows, Some(&profile), None)?;
        profile.annotate("rows_loaded", n as i64);
        Ok((n, profile))
    }

    fn copy_into_inner(
        &self,
        table: &str,
        rows: Vec<Vec<Value>>,
        profile: Option<&QueryProfile>,
        cancel: Option<eon_types::CancelToken>,
    ) -> Result<u64> {
        // Write front door (DESIGN.md "Failure detection & degraded
        // modes"): typed ClusterDown on a non-viable cluster, typed
        // StoreUnavailable fast-fail while the breaker is open.
        self.admit_write()?;
        if rows.is_empty() {
            return Ok(0);
        }
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let t = txn
            .snapshot()
            .table_by_name(table)
            .cloned()
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        txn.observe(t.oid);
        for row in &rows {
            t.schema.check_row(row)?;
        }
        let n_rows = rows.len() as u64;
        // Crash site: validated but nothing uploaded yet — a crash here
        // must leave no trace at all.
        self.config.faults.hit(fault_site::LOAD_PRE_UPLOAD)?;

        let span = profile.map(|p| p.span("load_pipeline", &coord.id.to_string()));
        let mut uploaded = Vec::new();
        let staged = self.stage_load_cancellable(
            &mut txn,
            &coord,
            &t,
            &rows,
            profile,
            &mut uploaded,
            cancel.as_ref(),
        );
        let result = staged.and_then(|writers| {
            // Crash site: every container is on shared storage but the
            // commit never runs — the §3.5 orphaned-upload scenario the
            // §6.5 leak scan exists for.
            self.config.faults.hit(fault_site::LOAD_PRE_COMMIT)?;
            let commit_span = profile.map(|p| p.span("load_commit", &coord.id.to_string()));
            let rec = self.commit_staged_write(txn, &coord, &writers);
            drop(commit_span);
            rec
        });
        drop(span);
        match result {
            Ok(_) => Ok(n_rows),
            Err(e) => {
                self.abort_uncommitted(uploaded, &e);
                Err(e)
            }
        }
    }

    /// Build one upload job per non-empty (projection, shard) bucket —
    /// in that fixed order, with storage keys pre-minted in the same
    /// order — run them on the write pool, and (only if *every* job
    /// succeeded) mint OIDs and push `AddContainer` ops in job order.
    ///
    /// Every key that may have reached shared storage is appended to
    /// `uploaded` — successes of a partially-failed fan-out *and*
    /// attempted jobs whose PUT reported failure (an ambiguous outcome
    /// may have applied it) — so the caller can register them with the
    /// reaper if the statement never commits. On failure the
    /// lowest-index job error is returned.
    pub(crate) fn stage_load(
        &self,
        txn: &mut Txn,
        coord: &Arc<NodeRuntime>,
        t: &Table,
        rows: &[Vec<Value>],
        profile: Option<&QueryProfile>,
        uploaded: &mut Vec<String>,
    ) -> Result<LoadWriters> {
        self.stage_load_cancellable(txn, coord, t, rows, profile, uploaded, None)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn stage_load_cancellable(
        &self,
        txn: &mut Txn,
        coord: &Arc<NodeRuntime>,
        t: &Table,
        rows: &[Vec<Value>],
        profile: Option<&QueryProfile>,
        uploaded: &mut Vec<String>,
        cancel: Option<&eon_types::CancelToken>,
    ) -> Result<LoadWriters> {
        // Writers: one serving subscriber per segment shard (§4.5).
        let snapshot = txn.snapshot().clone();
        let assignment = self.writer_assignment(&snapshot)?;
        let mut replica_writer = None;

        let mut jobs: Vec<LoadJob> = Vec::new();
        for (proj_oid, proj) in &t.projections {
            let proj_rows: Vec<Vec<Value>> = match &proj.live_aggregate {
                // Live Aggregate Projection (§2.1): fold the batch into
                // pre-computed partial aggregate rows before writing.
                Some(lap) => fold_live_aggregate(rows, lap),
                None => rows.iter().map(|r| proj.project_row(r)).collect(),
            };
            if proj.is_replicated() {
                // Single writer produces one container in the replica
                // shard; all subscribers (every node) get a cached copy.
                let writer = self
                    .membership
                    .up_nodes()
                    .into_iter()
                    .next()
                    .ok_or_else(|| EonError::ClusterDown("no nodes up".into()))?;
                replica_writer = Some(writer.id);
                let key = writer.next_sid().object_key();
                jobs.push(LoadJob {
                    proj: proj.clone(),
                    proj_oid: *proj_oid,
                    shard: self.replica_shard(),
                    writer,
                    key,
                    rows: Mutex::new(Some(proj_rows)),
                });
            } else {
                let buckets =
                    split_rows_by_shard(proj_rows, proj.seg_cols(), self.config.num_shards);
                for (i, bucket) in buckets.into_iter().enumerate() {
                    if bucket.is_empty() {
                        continue;
                    }
                    let shard = ShardId(i as u64);
                    let writer_id = assignment[&shard];
                    let writer = self
                        .membership
                        .get(writer_id)
                        .ok_or_else(|| EonError::NodeDown(writer_id.to_string()))?;
                    let key = writer.next_sid().object_key();
                    jobs.push(LoadJob {
                        proj: proj.clone(),
                        proj_oid: *proj_oid,
                        shard,
                        writer,
                        key,
                        rows: Mutex::new(Some(bucket)),
                    });
                }
            }
        }

        if let Some(p) = profile {
            p.annotate("load_jobs", jobs.len() as i64);
        }
        let metrics = LoadMetrics::register(&self.config.obs, &format!("node{}", coord.id.0));
        let fanout_span = profile.map(|p| p.span("load_upload_fanout", &coord.id.to_string()));
        let width = self.load_pool_width(coord);
        let results = self.run_write_pool(width, jobs.len(), &metrics, cancel, |i| {
            self.upload_container(&jobs[i])
        });
        drop(fanout_span);

        let mut staged: Vec<Option<StagedContainer>> = Vec::with_capacity(jobs.len());
        let mut first_err = None;
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Some(Ok(s)) => {
                    uploaded.push(s.key.clone());
                    staged.push(Some(s));
                }
                Some(Err(e)) => {
                    // An attempted PUT that *reported* failure may still
                    // have applied (ambiguous S3 outcome, §5.3). Its key
                    // is pre-minted, so register it too: deleting a
                    // missing object is a no-op, and a half-applied one
                    // stops being a leak.
                    uploaded.push(jobs[i].key.clone());
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    staged.push(None);
                }
                None => staged.push(None),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        // Seal after the join, in job order: catalog OIDs must come out
        // exactly as the serial loop minted them (DESIGN.md "Write
        // pipeline" determinism rule).
        for (job, s) in jobs.iter().zip(staged) {
            let s = s.expect("no pool error implies every job staged");
            txn.push(CatalogOp::AddContainer(ContainerMeta {
                oid: coord.catalog.next_oid(),
                key: s.key,
                table: t.oid,
                projection: job.proj_oid,
                shard: job.shard,
                rows: s.rows,
                size_bytes: s.size_bytes,
                col_minmax: s.col_minmax,
            }));
        }
        Ok(LoadWriters {
            assignment,
            replica_writer,
        })
    }

    /// Run `count` independent upload jobs on a bounded write pool of
    /// `width` workers. Returns one slot per job: `Some(result)` if
    /// the job ran, `None` if the pool stopped claiming after an
    /// earlier failure. With one worker (or one job) this degenerates
    /// to the serial loop, early-exit on error included; in parallel,
    /// in-flight jobs finish (their uploads still reach shared storage
    /// and must be tracked) but no new jobs start after a failure.
    pub(crate) fn run_write_pool<T, F>(
        &self,
        width: usize,
        count: usize,
        metrics: &LoadMetrics,
        cancel: Option<&eon_types::CancelToken>,
        f: F,
    ) -> Vec<Option<Result<T>>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        metrics.pool_tasks.add(count as u64);
        let workers = width.max(1).min(count.max(1));
        if workers <= 1 {
            let mut out = Vec::with_capacity(count);
            let mut failed = false;
            for i in 0..count {
                if failed {
                    out.push(None);
                    continue;
                }
                // A fired token is a failure at the claim boundary:
                // recorded against the claimed job, not a silent skip.
                let r = match cancel.map(|c| c.check("write pool job claim")) {
                    Some(Err(e)) => Err(e),
                    _ => f(i),
                };
                failed = r.is_err();
                out.push(Some(r));
            }
            return out;
        }
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let results: Mutex<Vec<(usize, Result<T>)>> = Mutex::new(Vec::with_capacity(count));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    if let Some(Err(e)) = cancel.map(|c| c.check("write pool job claim")) {
                        failed.store(true, Ordering::Relaxed);
                        results.lock().push((i, Err(e)));
                        break;
                    }
                    metrics
                        .queue_wait
                        .observe(started.elapsed().as_micros() as u64);
                    let r = f(i);
                    if r.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    results.lock().push((i, r));
                });
            }
        });
        let mut got: HashMap<usize, Result<T>> = results.into_inner().into_iter().collect();
        (0..count).map(|i| got.remove(&i)).collect()
    }

    /// Commit a staged write. Under the commit lock, re-check that
    /// every writer still holds its subscription — the segment-shard
    /// assignment *and* the replica-shard writer; a concurrent
    /// rebalance forces a rollback (§4.5).
    pub(crate) fn commit_staged_write(
        &self,
        txn: Txn,
        coord: &Arc<NodeRuntime>,
        writers: &LoadWriters,
    ) -> Result<eon_catalog::TxnRecord> {
        if self.commit_group_window() > 0 {
            // Group commit: the leader re-runs the §4.5 validation per
            // statement under the lock (DESIGN.md "Group commit").
            return self.commit_grouped(txn, coord.clone(), Some(writers.clone()));
        }
        let _g = self.commit_lock.lock();
        self.validate_writers(&coord.catalog.snapshot(), writers)?;
        self.commit_cluster_locked(txn, coord)
    }

    /// The §4.5 commit-time invariant: every writer the staged load
    /// used must still hold its subscription — the segment-shard
    /// assignment *and* the replica-shard writer; a concurrent
    /// rebalance forces a rollback. Checked against the snapshot
    /// current under the commit lock.
    pub(crate) fn validate_writers(
        &self,
        now: &eon_catalog::CatalogState,
        writers: &LoadWriters,
    ) -> Result<()> {
        for (shard, writer) in &writers.assignment {
            if !now.serving_subscribers(*shard).contains(writer) {
                return Err(EonError::CommitInvariant(format!(
                    "{writer} lost its subscription to {shard} during load"
                )));
            }
        }
        if let Some(writer) = writers.replica_writer {
            let shard = self.replica_shard();
            if !now.serving_subscribers(shard).contains(&writer) {
                return Err(EonError::CommitInvariant(format!(
                    "{writer} lost its subscription to {shard} during load"
                )));
            }
        }
        Ok(())
    }

    /// Graceful-rollback bookkeeping: a statement that uploaded files
    /// but will never commit hands its keys to the §6.5 reaper as
    /// deletable immediately — no query and no truncation version can
    /// reference a never-committed file. Two exceptions: an injected
    /// [`EonError::FaultInjected`] crash models process death, and a
    /// dead process runs no cleanup — those orphans are left for the
    /// leak scan, exactly like a real crash (DESIGN.md "Fault model");
    /// and a commit-path [`EonError::ClusterDown`] is metadata
    /// divergence surfaced *after* the coordinator's durable append —
    /// the statement may be durably committed, so reaping its files
    /// would destroy committed data. The halted cluster's revive leak
    /// scan owns that state instead.
    pub(crate) fn abort_uncommitted(&self, uploaded: Vec<String>, err: &EonError) {
        if uploaded.is_empty()
            || matches!(err, EonError::FaultInjected(_) | EonError::ClusterDown(_))
        {
            return;
        }
        let metrics = LoadMetrics::register(&self.config.obs, "db");
        metrics.rollbacks.inc();
        metrics.rollback_orphans.add(uploaded.len() as u64);
        self.reaper.note_uncommitted(uploaded);
    }

    /// Pick one up, serving subscriber per segment shard to act as the
    /// shard's writer for this statement.
    pub fn writer_assignment(
        &self,
        snapshot: &eon_catalog::CatalogState,
    ) -> Result<HashMap<ShardId, NodeId>> {
        let up = self.membership.up_ids();
        let shards = self.segment_shards();
        let mut can_serve = Vec::new();
        for &s in &shards {
            for n in snapshot.serving_subscribers(s) {
                if up.contains(&n) {
                    can_serve.push((n, s));
                }
            }
        }
        select_participants(
            &AssignmentProblem::flat(shards, up, can_serve),
            self.next_session_seed(),
        )
    }

    /// Run one upload job: sort + encode the rows into a ROS container
    /// (holding one of the writer's execution slots, §4.2), write it
    /// through the writer's cache (upload + local cache), and ship the
    /// bytes to peer subscribers' caches — concurrently per peer —
    /// (Fig 8 step 3).
    fn upload_container(&self, job: &LoadJob) -> Result<StagedContainer> {
        // Crash site: dies between uploads, leaving earlier containers
        // of the same (uncommitted) load orphaned on shared storage.
        self.config.faults.hit(fault_site::LOAD_UPLOAD)?;
        let writer = &job.writer;
        // Sort + encode + upload occupies the writer like any fragment.
        // A writer killed mid-wait fails the job with `NodeDown` (its
        // slot semaphore is closed) instead of parking the load.
        let _slot = writer.slots.acquire(1)?;
        let mut rows = job.rows.lock().take().expect("upload job claimed twice");
        let proj = &job.proj;
        proj.sort_rows(&mut rows);
        let width = proj.columns.len();
        let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(rows.len()); width];
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        let (bytes, footer) = RosWriter::new()
            .force_encoding(self.config.force_encoding)
            .encode(&columns)?;
        let key = job.key.clone();
        let size = bytes.len() as u64;

        // Write-through: local cache + shared storage upload (§5.2).
        writer.cache.put_through(&key, bytes.clone())?;
        // Ship to peers subscribed to this shard so their caches are
        // warm if they take over (§5.2: "much better node down
        // performance"). Peers are independent caches, so the copies
        // go out in parallel.
        let snapshot = writer.catalog.snapshot();
        let peers: Vec<Arc<NodeRuntime>> = snapshot
            .subscribers_in(job.shard, SubState::Active)
            .into_iter()
            .filter(|p| *p != writer.id)
            .filter_map(|p| self.membership.get(p))
            .filter(|p| p.is_up())
            .collect();
        if peers.len() <= 1 {
            for peer in &peers {
                peer.cache.insert_local(&key, bytes.clone())?;
            }
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = peers
                    .iter()
                    .map(|peer| {
                        let bytes = bytes.clone();
                        let key = &key;
                        s.spawn(move || peer.cache.insert_local(key, bytes))
                    })
                    .collect();
                for h in handles {
                    h.join().expect("peer ship panicked")?;
                }
                Ok::<(), EonError>(())
            })?;
        }

        let metrics =
            LoadMetrics::register(&self.config.obs, &format!("node{}", writer.id.0));
        metrics.containers.inc();
        metrics.rows.add(footer.total_rows);
        metrics.bytes.add(size);
        metrics.peer_ships.add(peers.len() as u64);

        let col_minmax = footer
            .columns
            .iter()
            .map(|c| match (c.min(), c.max()) {
                (Some(mn), Some(mx)) => Some((mn.clone(), mx.clone())),
                _ => None,
            })
            .collect();
        Ok(StagedContainer {
            key,
            rows: footer.total_rows,
            size_bytes: size,
            col_minmax,
        })
    }

    /// Upload one container and seal its catalog metadata immediately
    /// (`coord` mints the OID). Single-container callers — mergeout's
    /// rewrite — share the pipeline's upload path this way.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn write_container(
        &self,
        writer: &Arc<NodeRuntime>,
        proj: &Projection,
        proj_oid: eon_types::Oid,
        table_oid: eon_types::Oid,
        shard: ShardId,
        rows: Vec<Vec<Value>>,
        coord: &Arc<NodeRuntime>,
    ) -> Result<ContainerMeta> {
        let job = LoadJob {
            proj: proj.clone(),
            proj_oid,
            shard,
            writer: writer.clone(),
            key: writer.next_sid().object_key(),
            rows: Mutex::new(Some(rows)),
        };
        let s = self.upload_container(&job)?;
        Ok(ContainerMeta {
            oid: coord.catalog.next_oid(),
            key: s.key,
            table: table_oid,
            projection: proj_oid,
            shard,
            rows: s.rows,
            size_bytes: s.size_bytes,
            col_minmax: s.col_minmax,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_storage::MemFs;
    use eon_types::schema;

    fn db_with_table() -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("cust", Str), ("price", Int)];
        db.create_table(
            "sales",
            s.clone(),
            vec![Projection::super_projection("sales_super", &s, &[0], &[0])],
        )
        .unwrap();
        db
    }

    fn sample_rows(n: i64) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(format!("c{}", i % 10)),
                    Value::Int(i * 2),
                ]
            })
            .collect()
    }

    #[test]
    fn copy_creates_single_shard_containers() {
        let db = db_with_table();
        db.copy_into("sales", sample_rows(3000)).unwrap();
        let snap = db.snapshot().unwrap();
        let containers: Vec<_> = snap.containers.values().collect();
        // One per populated shard (3 shards, plenty of rows).
        assert_eq!(containers.len(), 3);
        let total: u64 = containers.iter().map(|c| c.rows).sum();
        assert_eq!(total, 3000);
        // Data uploaded to shared storage before commit.
        for c in containers {
            assert!(db.shared().exists(&c.key).unwrap(), "{} missing", c.key);
        }
    }

    #[test]
    fn peer_caches_warm_after_load() {
        let db = db_with_table();
        db.copy_into("sales", sample_rows(1000)).unwrap();
        let snap = db.snapshot().unwrap();
        for c in snap.containers.values() {
            // Every ACTIVE subscriber of the shard has the file cached.
            for peer in snap.subscribers_in(c.shard, SubState::Active) {
                let node = db.membership().get(peer).unwrap();
                assert!(
                    node.cache.contains(&c.key),
                    "{peer} missing {} in cache",
                    c.key
                );
            }
        }
    }

    #[test]
    fn copy_rejects_schema_violation() {
        let db = db_with_table();
        let bad = vec![vec![Value::Int(1)]];
        assert!(db.copy_into("sales", bad).is_err());
        // Nothing committed.
        assert!(db.snapshot().unwrap().containers.is_empty());
    }

    #[test]
    fn copy_empty_is_noop() {
        let db = db_with_table();
        assert_eq!(db.copy_into("sales", vec![]).unwrap(), 0);
    }

    #[test]
    fn replicated_projection_gets_one_container() {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("name", Str)];
        db.create_table(
            "dim",
            s.clone(),
            vec![Projection::replicated("dim_rep", &s, &[0])],
        )
        .unwrap();
        db.copy_into("dim", (0..100).map(|i| vec![Value::Int(i), Value::Str("x".into())]).collect())
            .unwrap();
        let snap = db.snapshot().unwrap();
        assert_eq!(snap.containers.len(), 1);
        let c = snap.containers.values().next().unwrap();
        assert_eq!(c.shard, db.replica_shard());
        // All nodes cache the replicated container.
        for node in db.membership().all() {
            assert!(node.cache.contains(&c.key));
        }
    }

    #[test]
    fn multiple_loads_accumulate_containers() {
        let db = db_with_table();
        db.copy_into("sales", sample_rows(300)).unwrap();
        db.copy_into("sales", sample_rows(300)).unwrap();
        let snap = db.snapshot().unwrap();
        assert_eq!(snap.containers.len(), 6);
    }

    #[test]
    fn container_minmax_recorded_for_pruning() {
        let db = db_with_table();
        db.copy_into("sales", sample_rows(1000)).unwrap();
        let snap = db.snapshot().unwrap();
        for c in snap.containers.values() {
            let (min, max) = c.col_minmax[0].clone().unwrap();
            assert!(min.as_int().unwrap() >= 0);
            assert!(max.as_int().unwrap() < 1000);
            assert!(min <= max);
        }
    }
}
