//! Data load: the Fig 8 workflow.
//!
//! 1. ingest rows;
//! 2. split per projection by segmentation hash so each container holds
//!    exactly one shard's rows (§4.5);
//! 3. write each container through the writer's cache (write-through,
//!    §5.2) — uploading to shared storage — and ship the bytes to the
//!    shard's other subscribers' caches so a node-down failover finds a
//!    warm cache;
//! 4. commit, re-validating under the commit lock that every writer
//!    still subscribes to the shard it wrote (§4.5's rollback rule).
//!
//! All data reaches shared storage *before* commit, so committed
//! transactions never lose files (§3.5).

use std::collections::HashMap;
use std::sync::Arc;

use eon_catalog::{CatalogOp, ContainerMeta, SubState};
use eon_cluster::NodeRuntime;
use eon_storage::fault::site as fault_site;
use eon_columnar::{split_rows_by_shard, Projection, RosWriter};
use eon_shard::{select_participants, AssignmentProblem};
use eon_types::{EonError, NodeId, Result, ShardId, Value};

use crate::db::EonDb;

/// Fold base-table rows into a Live Aggregate Projection's layout:
/// one row per group — group values followed by aggregate values.
pub(crate) fn fold_live_aggregate(
    rows: &[Vec<Value>],
    lap: &eon_columnar::LiveAggregate,
) -> Vec<Vec<Value>> {
    use eon_columnar::LapFunc;
    let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = lap.group_by.iter().map(|&c| row[c].clone()).collect();
        let accs = groups.entry(key).or_insert_with(|| {
            lap.aggs
                .iter()
                .map(|(f, _)| match f {
                    LapFunc::CountStar => Value::Int(0),
                    _ => Value::Null,
                })
                .collect()
        });
        for (acc, (f, col)) in accs.iter_mut().zip(&lap.aggs) {
            let v = &row[*col];
            match f {
                LapFunc::CountStar => {
                    *acc = Value::Int(acc.as_int().unwrap_or(0) + 1);
                }
                _ if v.is_null() => {}
                LapFunc::Sum => {
                    *acc = match (&*acc, v) {
                        (Value::Null, x) => x.clone(),
                        (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
                        (a, b) => Value::Float(
                            a.as_float().unwrap_or(0.0) + b.as_float().unwrap_or(0.0),
                        ),
                    };
                }
                LapFunc::Min => {
                    if acc.is_null() || v < acc {
                        *acc = v.clone();
                    }
                }
                LapFunc::Max => {
                    if acc.is_null() || v > acc {
                        *acc = v.clone();
                    }
                }
            }
        }
    }
    let mut out: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs);
            key
        })
        .collect();
    out.sort();
    out
}

impl EonDb {
    /// Bulk-load rows into a table (COPY). Returns the number of rows
    /// loaded. Rows are validated against the schema; every projection
    /// of the table receives the data.
    pub fn copy_into(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64> {
        self.ensure_viable()?;
        if rows.is_empty() {
            return Ok(0);
        }
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let t = txn
            .snapshot()
            .table_by_name(table)
            .cloned()
            .ok_or_else(|| EonError::UnknownTable(table.to_owned()))?;
        txn.observe(t.oid);
        for row in &rows {
            t.schema.check_row(row)?;
        }

        // Writers: one serving subscriber per segment shard (§4.5).
        let snapshot = txn.snapshot().clone();
        let assignment = self.writer_assignment(&snapshot)?;
        let n_rows = rows.len() as u64;
        // Crash site: validated but nothing uploaded yet — a crash here
        // must leave no trace at all.
        self.config.faults.hit(fault_site::LOAD_PRE_UPLOAD)?;

        for (proj_oid, proj) in &t.projections {
            let proj_rows: Vec<Vec<Value>> = match &proj.live_aggregate {
                // Live Aggregate Projection (§2.1): fold the batch into
                // pre-computed partial aggregate rows before writing.
                Some(lap) => fold_live_aggregate(&rows, lap),
                None => rows.iter().map(|r| proj.project_row(r)).collect(),
            };
            if proj.is_replicated() {
                // Single writer produces one container in the replica
                // shard; all subscribers (every node) get a cached copy.
                let writer = self
                    .membership
                    .up_nodes()
                    .into_iter()
                    .next()
                    .ok_or_else(|| EonError::ClusterDown("no nodes up".into()))?;
                let meta = self.write_container(
                    &writer,
                    proj,
                    *proj_oid,
                    t.oid,
                    self.replica_shard(),
                    proj_rows,
                    &coord,
                )?;
                txn.push(CatalogOp::AddContainer(meta));
            } else {
                let buckets =
                    split_rows_by_shard(proj_rows, proj.seg_cols(), self.config.num_shards);
                for (i, bucket) in buckets.into_iter().enumerate() {
                    if bucket.is_empty() {
                        continue;
                    }
                    let shard = ShardId(i as u64);
                    let writer_id = assignment[&shard];
                    let writer = self
                        .membership
                        .get(writer_id)
                        .ok_or_else(|| EonError::NodeDown(writer_id.to_string()))?;
                    let meta = self.write_container(
                        &writer, proj, *proj_oid, t.oid, shard, bucket, &coord,
                    )?;
                    txn.push(CatalogOp::AddContainer(meta));
                }
            }
        }

        // Crash site: every container is on shared storage but the
        // commit never runs — the §3.5 orphaned-upload scenario the
        // §6.5 leak scan exists for.
        self.config.faults.hit(fault_site::LOAD_PRE_COMMIT)?;

        // Commit point: all uploads finished. Under the commit lock,
        // re-check that the writers still hold their subscriptions —
        // a concurrent rebalance forces a rollback (§4.5).
        let _g = self.commit_lock.lock();
        let now = coord.catalog.snapshot();
        for (shard, writer) in &assignment {
            if !now.serving_subscribers(*shard).contains(writer) {
                return Err(EonError::CommitInvariant(format!(
                    "{writer} lost its subscription to {shard} during load"
                )));
            }
        }
        self.commit_cluster_locked(txn, &coord)?;
        Ok(n_rows)
    }

    /// Pick one up, serving subscriber per segment shard to act as the
    /// shard's writer for this statement.
    pub fn writer_assignment(
        &self,
        snapshot: &eon_catalog::CatalogState,
    ) -> Result<HashMap<ShardId, NodeId>> {
        let up = self.membership.up_ids();
        let shards = self.segment_shards();
        let mut can_serve = Vec::new();
        for &s in &shards {
            for n in snapshot.serving_subscribers(s) {
                if up.contains(&n) {
                    can_serve.push((n, s));
                }
            }
        }
        select_participants(
            &AssignmentProblem::flat(shards, up, can_serve),
            self.next_session_seed(),
        )
    }

    /// Encode rows (sorted by the projection order) into a ROS
    /// container, write it through the writer's cache (upload + local
    /// cache), ship bytes to peer subscribers' caches (Fig 8 step 3),
    /// and return the catalog metadata. `coord` mints the catalog OID.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn write_container(
        &self,
        writer: &Arc<NodeRuntime>,
        proj: &Projection,
        proj_oid: eon_types::Oid,
        table_oid: eon_types::Oid,
        shard: ShardId,
        mut rows: Vec<Vec<Value>>,
        coord: &Arc<NodeRuntime>,
    ) -> Result<ContainerMeta> {
        // Crash site: dies between uploads, leaving earlier containers
        // of the same (uncommitted) load orphaned on shared storage.
        self.config.faults.hit(fault_site::LOAD_UPLOAD)?;
        proj.sort_rows(&mut rows);
        let width = proj.columns.len();
        let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(rows.len()); width];
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        let (bytes, footer) = RosWriter::new().encode(&columns)?;
        let key = writer.next_sid().object_key();
        let size = bytes.len() as u64;

        // Write-through: local cache + shared storage upload (§5.2).
        writer.cache.put_through(&key, bytes.clone())?;
        // Ship to peers subscribed to this shard so their caches are
        // warm if they take over (§5.2: "much better node down
        // performance").
        let snapshot = coord.catalog.snapshot();
        for peer_id in snapshot.subscribers_in(shard, SubState::Active) {
            if peer_id == writer.id {
                continue;
            }
            if let Some(peer) = self.membership.get(peer_id) {
                if peer.is_up() {
                    peer.cache.insert_local(&key, bytes.clone())?;
                }
            }
        }

        let col_minmax = footer
            .columns
            .iter()
            .map(|c| match (c.min(), c.max()) {
                (Some(mn), Some(mx)) => Some((mn.clone(), mx.clone())),
                _ => None,
            })
            .collect();
        Ok(ContainerMeta {
            oid: coord.catalog.next_oid(),
            key,
            table: table_oid,
            projection: proj_oid,
            shard,
            rows: footer.total_rows,
            size_bytes: size,
            col_minmax,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_storage::MemFs;
    use eon_types::schema;

    fn db_with_table() -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("cust", Str), ("price", Int)];
        db.create_table(
            "sales",
            s.clone(),
            vec![Projection::super_projection("sales_super", &s, &[0], &[0])],
        )
        .unwrap();
        db
    }

    fn sample_rows(n: i64) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(format!("c{}", i % 10)),
                    Value::Int(i * 2),
                ]
            })
            .collect()
    }

    #[test]
    fn copy_creates_single_shard_containers() {
        let db = db_with_table();
        db.copy_into("sales", sample_rows(3000)).unwrap();
        let snap = db.snapshot().unwrap();
        let containers: Vec<_> = snap.containers.values().collect();
        // One per populated shard (3 shards, plenty of rows).
        assert_eq!(containers.len(), 3);
        let total: u64 = containers.iter().map(|c| c.rows).sum();
        assert_eq!(total, 3000);
        // Data uploaded to shared storage before commit.
        for c in containers {
            assert!(db.shared().exists(&c.key).unwrap(), "{} missing", c.key);
        }
    }

    #[test]
    fn peer_caches_warm_after_load() {
        let db = db_with_table();
        db.copy_into("sales", sample_rows(1000)).unwrap();
        let snap = db.snapshot().unwrap();
        for c in snap.containers.values() {
            // Every ACTIVE subscriber of the shard has the file cached.
            for peer in snap.subscribers_in(c.shard, SubState::Active) {
                let node = db.membership().get(peer).unwrap();
                assert!(
                    node.cache.contains(&c.key),
                    "{peer} missing {} in cache",
                    c.key
                );
            }
        }
    }

    #[test]
    fn copy_rejects_schema_violation() {
        let db = db_with_table();
        let bad = vec![vec![Value::Int(1)]];
        assert!(db.copy_into("sales", bad).is_err());
        // Nothing committed.
        assert!(db.snapshot().unwrap().containers.is_empty());
    }

    #[test]
    fn copy_empty_is_noop() {
        let db = db_with_table();
        assert_eq!(db.copy_into("sales", vec![]).unwrap(), 0);
    }

    #[test]
    fn replicated_projection_gets_one_container() {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("name", Str)];
        db.create_table(
            "dim",
            s.clone(),
            vec![Projection::replicated("dim_rep", &s, &[0])],
        )
        .unwrap();
        db.copy_into("dim", (0..100).map(|i| vec![Value::Int(i), Value::Str("x".into())]).collect())
            .unwrap();
        let snap = db.snapshot().unwrap();
        assert_eq!(snap.containers.len(), 1);
        let c = snap.containers.values().next().unwrap();
        assert_eq!(c.shard, db.replica_shard());
        // All nodes cache the replicated container.
        for node in db.membership().all() {
            assert!(node.cache.contains(&c.key));
        }
    }

    #[test]
    fn multiple_loads_accumulate_containers() {
        let db = db_with_table();
        db.copy_into("sales", sample_rows(300)).unwrap();
        db.copy_into("sales", sample_rows(300)).unwrap();
        let snap = db.snapshot().unwrap();
        assert_eq!(snap.containers.len(), 6);
    }

    #[test]
    fn container_minmax_recorded_for_pruning() {
        let db = db_with_table();
        db.copy_into("sales", sample_rows(1000)).unwrap();
        let snap = db.snapshot().unwrap();
        for c in snap.containers.values() {
            let (min, max) = c.col_minmax[0].clone().unwrap();
            assert!(min.as_int().unwrap() >= 0);
            assert!(max.as_int().unwrap() < 1000);
            assert!(min <= max);
        }
    }
}
