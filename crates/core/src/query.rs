//! Distributed query execution (paper §4).
//!
//! A session (1) picks a covering set of participating subscriptions
//! via the max-flow solver (§4.1), (2) splits the plan into a local
//! phase and a coordinator merge (`eon-exec::auto_distribute`), (3)
//! acquires execution slots — a query takes `S` of the cluster's `N·E`
//! slots (§4.2) — and (4) runs the local phases on the participating
//! nodes in parallel, merging at the coordinator. Subcluster isolation
//! (§4.3) enters as a priority tier; crunch scaling (§4.4) spreads each
//! shard over several workers with a hash-filter slice.

use std::collections::HashMap;
use std::sync::Arc;

use eon_cache::CacheMode;
use eon_cluster::NodeRuntime;
use eon_exec::crunch::CrunchSlice;
use eon_exec::execute::LocalResult;
use eon_exec::{auto_distribute, Plan};
use eon_obs::QueryProfile;
use eon_shard::{select_participants, AssignmentProblem};
use eon_types::{EonError, NodeId, Result, ShardId, Value};

use crate::db::EonDb;
use crate::provider::NodeProvider;

/// Per-query session options.
#[derive(Debug, Clone, Default)]
pub struct SessionOpts {
    /// Restrict execution to a subcluster (§4.3); nodes outside it
    /// participate only if the subcluster cannot cover every shard.
    pub subcluster: Option<u64>,
    /// Bypass the depot for this query (§5.2 shaping policy).
    pub bypass_cache: bool,
    /// Crunch scaling (§4.4): spread every shard across all available
    /// participants with hash-filter slices. Improves single-query
    /// latency when nodes outnumber shards.
    pub crunch: bool,
    /// Session cancellation (DESIGN.md "Admission control"): checked in
    /// the admission queue, at execution-slot waits, and at scan-pool
    /// task claims, so a cancelled session releases everything it holds
    /// at the next boundary.
    pub cancel: Option<eon_types::CancelToken>,
}

impl SessionOpts {
    pub fn subcluster(id: u64) -> Self {
        SessionOpts {
            subcluster: Some(id),
            ..Default::default()
        }
    }
}

/// Which nodes serve which shards for one session, possibly with
/// several crunch workers per shard.
#[derive(Debug, Clone)]
pub struct Participation {
    /// (node, shards it serves, crunch slice).
    pub workers: Vec<(NodeId, Vec<ShardId>, CrunchSlice)>,
}

impl EonDb {
    /// Compute the participating subscriptions for a session (§4.1).
    pub fn participation(&self, opts: &SessionOpts) -> Result<Participation> {
        let snapshot = self.snapshot()?;
        let up = self.membership.up_ids();
        let shards = self.segment_shards();
        let mut can_serve = Vec::new();
        for &s in &shards {
            for n in snapshot.serving_subscribers(s) {
                if up.contains(&n) {
                    can_serve.push((n, s));
                }
            }
        }
        // Priority tiers: the client's subcluster first (§4.3).
        let tiers = match opts.subcluster {
            Some(sc) => {
                let (inside, outside): (Vec<NodeId>, Vec<NodeId>) = up.iter().partition(|id| {
                    self.membership
                        .get(**id)
                        .map(|n| n.subcluster.load(std::sync::atomic::Ordering::Relaxed) == sc)
                        .unwrap_or(false)
                });
                vec![inside, outside]
            }
            None => vec![up.clone()],
        };
        let assignment = select_participants(
            &AssignmentProblem {
                shards: shards.clone(),
                tiers,
                can_serve: can_serve.clone(),
            },
            self.next_session_seed(),
        )?;

        if !opts.crunch {
            let mut by_node: HashMap<NodeId, Vec<ShardId>> = HashMap::new();
            for (shard, node) in assignment {
                by_node.entry(node).or_default().push(shard);
            }
            return Ok(Participation {
                workers: by_node
                    .into_iter()
                    .map(|(n, s)| (n, s, CrunchSlice::all()))
                    .collect(),
            });
        }

        // Crunch scaling: every eligible subscriber of a shard becomes
        // a worker; each worker takes a hash slice of the shard (§4.4).
        let mut workers = Vec::new();
        for &shard in &shards {
            let eligible: Vec<NodeId> = can_serve
                .iter()
                .filter(|(_, s)| *s == shard)
                .map(|(n, _)| *n)
                .collect();
            let k = eligible.len().max(1);
            for (i, node) in eligible.into_iter().enumerate() {
                workers.push((node, vec![shard], CrunchSlice::new(i, k)));
            }
        }
        Ok(Participation { workers })
    }

    /// Execute a query plan across the cluster.
    pub fn query(&self, plan: &Plan) -> Result<Vec<Vec<Value>>> {
        self.query_with(plan, &SessionOpts::default())
    }

    /// Execute with session options.
    ///
    /// Mid-query participant failover (§4.1): "should a node go down
    /// in the middle of a query's execution, the query fails and is
    /// restarted with a different set of participants" — the restart is
    /// the *coordinator's* job, not the client's. When a worker dies
    /// during its local phase, participation is recomputed over the
    /// surviving nodes and the query re-runs, up to a bounded number of
    /// failovers; any other error (or an unviable cluster) surfaces
    /// immediately.
    pub fn query_with(&self, plan: &Plan, opts: &SessionOpts) -> Result<Vec<Vec<Value>>> {
        self.query_inner(plan, opts, None)
    }

    /// [`EonDb::query_with`], additionally collecting an
    /// `EXPLAIN ANALYZE`-style [`QueryProfile`]: per-participant
    /// local-phase and slot-wait spans, failover count, rows returned.
    pub fn query_profiled(
        &self,
        plan: &Plan,
        opts: &SessionOpts,
    ) -> Result<(Vec<Vec<Value>>, QueryProfile)> {
        let profile = QueryProfile::new();
        let rows = self.query_inner(plan, opts, Some(&profile))?;
        profile.annotate("rows_returned", rows.len() as i64);
        Ok((rows, profile))
    }

    fn query_inner(
        &self,
        plan: &Plan,
        opts: &SessionOpts,
        profile: Option<&QueryProfile>,
    ) -> Result<Vec<Vec<Value>>> {
        const MAX_FAILOVERS: usize = 3;
        // Health front door (DESIGN.md "Failure detection & degraded
        // modes"): a down cluster rejects with typed `ClusterDown`
        // before the session queues for admission or touches a slot
        // semaphore. Degraded and read-only states still serve reads.
        self.admit_read()?;
        // Admission (DESIGN.md "Admission control"): the session enters
        // its subcluster's resource pool before any participant work —
        // one admission covers all failover attempts. The guard is held
        // for the whole query; a `Saturated`/deadline outcome sheds the
        // session here, before it can pile onto the slot semaphores.
        let pool = opts.subcluster.unwrap_or(0);
        let admit_started = std::time::Instant::now();
        let _admission = self.admission.admit(pool, opts.cancel.as_ref())?;
        if let Some(p) = profile {
            p.record_span(
                "admission_wait",
                &format!("sc{pool}"),
                admit_started.elapsed().as_micros() as u64,
            );
        }
        let labels: &[(&str, &str)] = &[("subsystem", "coordinator")];
        let attempts = self.config.obs.counter("coordinator_query_attempts_total", labels);
        let failed_over = self.config.obs.counter("coordinator_failovers_total", labels);
        let mut failovers = 0;
        loop {
            attempts.inc();
            match self.try_query(plan, opts, profile) {
                Err(EonError::NodeDown(who)) if failovers < MAX_FAILOVERS => {
                    // A participant died. try_query re-checks viability
                    // and recomputes participation from the up-set, so
                    // looping is the recompute.
                    failovers += 1;
                    failed_over.inc();
                    let _ = who;
                }
                // A worker thread panicked (bug or injected): the
                // process survives — the panic became a typed error at
                // the join — and the query retries like any
                // mid-query participant loss.
                Err(EonError::Internal(msg))
                    if msg.starts_with("query worker panicked") && failovers < MAX_FAILOVERS =>
                {
                    failovers += 1;
                    failed_over.inc();
                }
                other => {
                    if let Some(p) = profile {
                        p.annotate("failovers", failovers as i64);
                    }
                    return other;
                }
            }
        }
    }

    /// One attempt: pick participants from the current up-set and run.
    fn try_query(
        &self,
        plan: &Plan,
        opts: &SessionOpts,
        profile: Option<&QueryProfile>,
    ) -> Result<Vec<Vec<Value>>> {
        self.ensure_viable()?;
        let snapshot = self.snapshot()?;
        // Answer eligible aggregations from Live Aggregate Projections
        // (§2.1) before splitting the plan for distribution.
        let plan = crate::lap::rewrite_for_laps(plan, &snapshot);
        let dp = Arc::new(auto_distribute(&plan));
        let version = self.version();
        let cache_mode = if opts.bypass_cache {
            CacheMode::Bypass
        } else {
            CacheMode::Normal
        };

        // Plans with no shard-local scan run on a single node —
        // replicating a global scan across nodes would double-count.
        let workers: Vec<(Arc<NodeRuntime>, Vec<ShardId>, CrunchSlice)> = if dp.has_local_scan() {
            let participation = self.participation(opts)?;
            participation
                .workers
                .into_iter()
                .map(|(id, shards, slice)| {
                    let node = self
                        .membership
                        .get(id)
                        .ok_or_else(|| EonError::NodeDown(id.to_string()))?;
                    Ok((node, shards, slice))
                })
                .collect::<Result<_>>()?
        } else {
            vec![(self.pick_coordinator()?, Vec::new(), CrunchSlice::all())]
        };

        // Run local phases in parallel; each worker holds one execution
        // slot per shard it serves (§4.2's S-of-N·E accounting). Slot
        // waits are deadline-bounded and cancellable: a saturated node
        // returns `DeadlineExceeded` within `slot_wait_ms` instead of
        // parking the session, and a node killed mid-wait wakes its
        // waiters with `NodeDown` so the failover loop re-plans.
        let all_shards = self.segment_shards();
        let replica = self.replica_shard();
        let slot_wait = eon_cluster::SlotWait {
            timeout: match self.config.slot_wait_ms {
                0 => None,
                ms => Some(std::time::Duration::from_millis(ms)),
            },
            cancel: opts.cancel.clone(),
            ..Default::default()
        };
        let results: Vec<LocalResult> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers.len());
            for (node, shards, slice) in &workers {
                let dp = dp.clone();
                let snapshot = snapshot.clone();
                let all_shards = all_shards.clone();
                let fragment_ms = self.config.fragment_ms;
                let faults = self.config.faults.clone();
                let slot_wait = &slot_wait;
                handles.push(scope.spawn(move || {
                    let queued = std::time::Instant::now();
                    let _slots = node.slots.acquire_wait(shards.len().max(1), slot_wait)?;
                    if let Some(p) = profile {
                        p.record_span(
                            "slot_wait",
                            &node.id.to_string(),
                            queued.elapsed().as_micros() as u64,
                        );
                    }
                    // Simulated per-node compute (see EonConfig::fragment_ms).
                    if fragment_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(fragment_ms));
                    }
                    // Crash site: this participant's process dies during
                    // its local phase (§4.1). Node-scoped so a seeded
                    // plan picks a deterministic victim.
                    if faults
                        .hit_node(eon_storage::fault::site::QUERY_WORKER_LOCAL, node.id.0)
                        .is_err()
                    {
                        node.kill();
                        return Err(EonError::NodeDown(format!("{} died mid-query", node.id)));
                    }
                    // Crash site: the worker *panics* instead of dying
                    // cleanly — exercises the join-side containment
                    // (a panic must become a typed error, not abort
                    // the whole process).
                    if faults
                        .hit_node(eon_storage::fault::site::QUERY_WORKER_PANIC, node.id.0)
                        .is_err()
                    {
                        panic!("injected local-phase panic on {}", node.id);
                    }
                    let token = node.begin_query(version);
                    let provider = NodeProvider {
                        node: node.clone(),
                        snapshot,
                        my_shards: shards.clone(),
                        all_shards,
                        replica_shard: replica,
                        cache_mode,
                        crunch: if slice.is_split() { Some(*slice) } else { None },
                        scan: self.scan_options(node, profile, opts.cancel.clone()),
                    };
                    let local_span =
                        profile.map(|p| p.span("local_phase", &node.id.to_string()));
                    let out = dp.execute_local(&provider);
                    drop(local_span);
                    node.finish_query(token);
                    // A worker killed out from under a running local
                    // phase cannot vouch for its partial result.
                    if out.is_ok() && !node.is_up() {
                        return Err(EonError::NodeDown(format!("{} died mid-query", node.id)));
                    }
                    out
                }));
            }
            // Join *every* handle before sequencing errors: a panic in
            // one worker must not abort the process (it becomes a typed
            // `Internal` error the failover loop retries), and
            // short-circuiting here would leave panicked threads for
            // the scope exit to re-panic on.
            let joined: Vec<Result<LocalResult>> = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        Err(EonError::Internal(format!("query worker panicked: {msg}")))
                    }
                })
                .collect();
            joined.into_iter().collect::<Result<Vec<_>>>()
        })?;

        let merge_span = profile.map(|p| p.span("coordinator_merge", ""));
        let out = dp.finish(results);
        drop(merge_span);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_columnar::{Predicate, Projection};
    use eon_exec::{AggSpec, Expr, ScanSpec, SortKey};
    use eon_storage::MemFs;
    use eon_types::schema;

    fn db_loaded(nodes: usize, shards: usize) -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(nodes, shards)).unwrap();
        let s = schema![("id", Int), ("grp", Int), ("price", Int)];
        db.create_table(
            "sales",
            s.clone(),
            vec![Projection::super_projection("p", &s, &[0], &[0])],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..2000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Int(i * 3)])
            .collect();
        db.copy_into("sales", rows).unwrap();
        db
    }

    fn sum_by_grp() -> Plan {
        Plan::scan(ScanSpec::new("sales"))
            .aggregate(vec![1], vec![AggSpec::sum(Expr::col(2)), AggSpec::count_star()])
            .sort(vec![SortKey::asc(0)])
    }

    fn expected_sum_by_grp() -> Vec<Vec<Value>> {
        let mut sums = [(0i64, 0i64); 7];
        for i in 0..2000i64 {
            sums[(i % 7) as usize].0 += i * 3;
            sums[(i % 7) as usize].1 += 1;
        }
        sums.iter()
            .enumerate()
            .map(|(g, &(s, c))| vec![Value::Int(g as i64), Value::Int(s), Value::Int(c)])
            .collect()
    }

    #[test]
    fn distributed_aggregate_is_exact() {
        let db = db_loaded(3, 3);
        assert_eq!(db.query(&sum_by_grp()).unwrap(), expected_sum_by_grp());
    }

    #[test]
    fn more_nodes_than_shards_still_exact() {
        let db = db_loaded(5, 3);
        assert_eq!(db.query(&sum_by_grp()).unwrap(), expected_sum_by_grp());
    }

    #[test]
    fn fewer_nodes_than_shards_still_exact() {
        let db = db_loaded(2, 5);
        assert_eq!(db.query(&sum_by_grp()).unwrap(), expected_sum_by_grp());
    }

    #[test]
    fn predicate_pushdown_correct() {
        let db = db_loaded(3, 3);
        let plan = Plan::scan(
            ScanSpec::new("sales")
                .predicate(Predicate::cmp(0, eon_columnar::pruning::CmpOp::Lt, 10i64))
                .columns(vec![0]),
        )
        .sort(vec![SortKey::asc(0)]);
        let out = db.query(&plan).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], vec![Value::Int(9)]);
    }

    #[test]
    fn crunch_scaling_matches_plain() {
        let db = db_loaded(4, 2);
        let plain = db.query(&sum_by_grp()).unwrap();
        let crunched = db
            .query_with(
                &sum_by_grp(),
                &SessionOpts {
                    crunch: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(plain, crunched);
    }

    #[test]
    fn bypass_cache_gives_same_answer() {
        let db = db_loaded(3, 3);
        let normal = db.query(&sum_by_grp()).unwrap();
        let bypass = db
            .query_with(
                &sum_by_grp(),
                &SessionOpts {
                    bypass_cache: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(normal, bypass);
    }

    #[test]
    fn node_down_query_still_exact() {
        let db = db_loaded(4, 3);
        db.membership().get(NodeId(0)).unwrap().kill();
        assert_eq!(db.query(&sum_by_grp()).unwrap(), expected_sum_by_grp());
    }

    #[test]
    fn participant_killed_mid_query_fails_over() {
        use eon_storage::fault::{site, FaultPlan};
        // 4 nodes / 3 shards with k=1: any single node can die and the
        // survivors still cover every shard. Arm a crash that kills
        // node 1 the first time it runs a local phase.
        let plan_inject = FaultPlan::at_node(site::QUERY_WORKER_LOCAL, 0, 1);
        let db = {
            let db = EonDb::create(
                Arc::new(MemFs::new()),
                EonConfig::new(4, 3).faults(plan_inject.clone()),
            )
            .unwrap();
            let s = schema![("id", Int), ("grp", Int), ("price", Int)];
            db.create_table(
                "sales",
                s.clone(),
                vec![Projection::super_projection("p", &s, &[0], &[0])],
            )
            .unwrap();
            let rows: Vec<Vec<Value>> = (0..2000)
                .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Int(i * 3)])
                .collect();
            db.copy_into("sales", rows).unwrap();
            db
        };
        // Run queries until the armed crash actually fires (node 1 may
        // not participate in the very first session).
        let mut fired = false;
        for _ in 0..20 {
            let out = db.query(&sum_by_grp()).expect("failover should hide the death");
            assert_eq!(out, expected_sum_by_grp());
            if !plan_inject.fired().is_empty() {
                fired = true;
                break;
            }
        }
        assert!(fired, "crash site never fired");
        // The victim really is down, and queries keep answering.
        assert!(!db.membership().get(NodeId(1)).unwrap().is_up());
        assert_eq!(db.query(&sum_by_grp()).unwrap(), expected_sum_by_grp());
    }

    #[test]
    fn failover_is_bounded_when_cluster_goes_unviable() {
        use eon_storage::fault::{site, FaultPlan};
        // 3 nodes / 3 shards, k=1: shard coverage survives one death
        // but not two. Kill nodes until the cluster is unviable and
        // check the query surfaces an error instead of looping.
        let db = db_loaded(3, 3);
        db.membership().get(NodeId(0)).unwrap().kill();
        db.membership().get(NodeId(1)).unwrap().kill();
        assert!(db.query(&sum_by_grp()).is_err());
        // And an armed-but-unfired plan on a healthy db leaves queries
        // untouched (inert-path sanity).
        let db2 = db_loaded(3, 3);
        db2.config().faults.hit(site::LOAD_PRE_COMMIT).unwrap();
        let inert = FaultPlan::inert();
        assert!(inert.hit_node(site::QUERY_WORKER_LOCAL, 0).is_ok());
        assert_eq!(db2.query(&sum_by_grp()).unwrap(), expected_sum_by_grp());
    }

    #[test]
    fn subcluster_isolation_respected() {
        let db = db_loaded(4, 2);
        // Nodes 2,3 form subcluster 1 and can serve everything? They
        // may not subscribe to every shard, so isolation is best-effort
        // per §4.3 — the assignment must still succeed.
        for id in [2u64, 3u64] {
            db.membership()
                .get(NodeId(id))
                .unwrap()
                .subcluster
                .store(1, std::sync::atomic::Ordering::Relaxed);
        }
        let out = db
            .query_with(&sum_by_grp(), &SessionOpts::subcluster(1))
            .unwrap();
        assert_eq!(out, expected_sum_by_grp());
    }

    #[test]
    fn repeated_queries_spread_over_nodes() {
        // 6 nodes, 2 shards: assignments across many sessions should
        // touch more than 2 distinct nodes (§4.1 edge-order variation).
        let db = db_loaded(6, 2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30 {
            let p = db.participation(&SessionOpts::default()).unwrap();
            for (n, _, _) in p.workers {
                seen.insert(n);
            }
        }
        assert!(seen.len() > 2, "only {} nodes ever participated", seen.len());
    }
}
