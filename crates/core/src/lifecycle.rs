//! Node lifecycle and elasticity (paper §3.3, §3.5, §6.1, §6.4).
//!
//! * kill / restart — process death loses in-memory state; restart
//!   recovers from the node's local transaction log, then
//!   *re-subscribes*: ACTIVE subscriptions flip to PENDING, metadata
//!   catches up incrementally from a peer, the cache warms from a
//!   peer's MRU list, and the subscriptions return to ACTIVE (§3.3).
//! * add / remove node — the §6.4 elasticity story: subscriptions
//!   rebalance over the new node set; no data moves, only metadata and
//!   (optionally) cache warming.
//! * revive — §3.5: start a cluster from nothing but shared storage,
//!   honoring the `cluster_info.json` lease and truncation version and
//!   stamping a fresh incarnation id.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use eon_catalog::{CatalogOp, CatalogState, ClusterInfo, SubState, Subscription};
use eon_cluster::NodeRuntime;
use eon_storage::fault::site as fault_site;
use eon_shard::{can_drop_subscription, rebalance_plan};
use eon_types::{EonError, NodeId, Result, TxnVersion};

use crate::config::EonConfig;
use crate::db::EonDb;

impl EonDb {
    /// Simulate a node process dying. Shards it served stay available
    /// through their other subscribers — no repair needed (§6.1).
    pub fn kill_node(&self, id: NodeId) -> Result<()> {
        let node = self
            .membership
            .get(id)
            .ok_or_else(|| EonError::NodeDown(format!("{id} not commissioned")))?;
        node.kill();
        Ok(())
    }

    /// Restart a killed node: recover its catalog from its local disk,
    /// re-subscribe (§3.3), catch up metadata from a peer, warm the
    /// cache from a peer, and return to full participation. Returns the
    /// number of files warmed into the cache.
    pub fn restart_node(&self, id: NodeId) -> Result<usize> {
        let old = self
            .membership
            .get(id)
            .ok_or_else(|| EonError::NodeDown(format!("{id} not commissioned")))?;
        if old.is_up() {
            return Err(EonError::Internal(format!("{id} is already up")));
        }
        // Fresh process over the same local disk (new instance id).
        let seed = self.instance_seed.fetch_add(1, Ordering::Relaxed);
        let node = NodeRuntime::with_local_disk(
            id,
            old.local_disk.clone(),
            self.shared.clone(),
            &format!("{}/node{}", self.incarnation(), id.0),
            self.config.cache_bytes,
            self.config.exec_slots,
            seed,
        );
        node.set_faults(self.config.faults.clone());
        node.recover_local()?;

        // Metadata transfer *before* rejoining the commit fan-out: the
        // node must reach the cluster version or distributed records
        // would arrive out of order (§3.3's catch-up rounds).
        let coord = self.pick_up_peer(id)?;
        self.catch_up_node(&node, &coord)?;
        self.membership.add(node.clone()); // replaces the dead runtime

        // Re-subscription (§3.3): the cluster flips the rejoiner's
        // ACTIVE subscriptions to PENDING...
        let my_subs: Vec<Subscription> = coord
            .catalog
            .snapshot()
            .subscriptions_of(id)
            .into_iter()
            .cloned()
            .collect();
        let mut txn = coord.catalog.begin();
        for s in &my_subs {
            if s.state == SubState::Active {
                txn.push(CatalogOp::UpsertSubscription(Subscription {
                    state: SubState::Pending,
                    ..s.clone()
                }));
            }
        }
        if !txn.is_empty() {
            self.commit_cluster(txn, &coord)?;
        }

        // PENDING → PASSIVE under the commit lock, then cache warm and
        // ACTIVE (§3.3's two-step completion).
        self.promote_subscriptions(id, &coord)?;
        let warmed = self.warm_cache_from_peer(&node)?;
        Ok(warmed)
    }

    /// Add a brand-new node (§6.4): commission, install the catalog,
    /// rebalance subscriptions, promote, warm cache. Returns its id.
    pub fn add_node(&self) -> Result<NodeId> {
        self.ensure_viable()?;
        let id = NodeId(self.next_node_id.fetch_add(1, Ordering::Relaxed));
        let node = self.commission_node(id);
        let coord = self.pick_up_peer(id)?;
        // New node installs the current catalog wholesale.
        node.catalog.install(
            (*coord.catalog.snapshot()).clone(),
            coord.catalog.version(),
        );
        for oid in node.catalog.snapshot().obj_versions.keys() {
            node.catalog.bump_oid_floor(oid.0);
        }
        node.checkpoint()?;
        self.membership.add(node.clone());

        // Rebalance over the grown node set; the plan creates PENDING
        // subscriptions for the newcomer (and REMOVING for surplus).
        let mut txn = coord.catalog.begin();
        for op in rebalance_plan(
            &coord.catalog.snapshot(),
            &self.membership.up_ids(),
            self.config.k_safety,
        ) {
            txn.push(op);
        }
        // Replica shard: every node subscribes.
        txn.push(CatalogOp::UpsertSubscription(Subscription {
            node: id,
            shard: self.replica_shard(),
            state: SubState::Pending,
        }));
        self.commit_cluster(txn, &coord)?;

        self.catch_up_node(&node, &coord)?;
        self.promote_subscriptions(id, &coord)?;
        self.warm_cache_from_peer(&node)?;
        Ok(id)
    }

    /// Whole-cluster process crash: every node's memory is lost at
    /// once, local disks survive. The group-commit fault sites model
    /// the batch *leader* dying, and in this in-process cluster the
    /// leader's death takes every in-memory catalog with it — so unlike
    /// [`EonDb::restart_node`], no surviving peer exists to snapshot
    /// from, and recovery must come from the durable logs alone.
    ///
    /// Every node recovers from its own local log (§3.5's durability
    /// point), then nodes behind the most-advanced *durable* log replay
    /// its tail — never a surviving in-memory catalog, because there is
    /// none. A mid-distribution crash (coordinator appended, some peers
    /// did not) converges here: the batch append is one atomic file, so
    /// each log holds the whole batch or nothing, and the laggards
    /// stream the missing records. Returns the converged version.
    pub fn cold_restart_all(&self) -> Result<TxnVersion> {
        let mut nodes: Vec<Arc<NodeRuntime>> = Vec::new();
        for old in self.membership.all() {
            if old.is_up() {
                old.kill();
            }
            let seed = self.instance_seed.fetch_add(1, Ordering::Relaxed);
            let node = NodeRuntime::with_local_disk(
                old.id,
                old.local_disk.clone(),
                self.shared.clone(),
                &format!("{}/node{}", self.incarnation(), old.id.0),
                self.config.cache_bytes,
                self.config.exec_slots,
                seed,
            );
            node.set_faults(self.config.faults.clone());
            node.recover_local()?;
            nodes.push(node);
        }
        let tip = nodes
            .iter()
            .max_by_key(|n| n.catalog.version())
            .cloned()
            .ok_or_else(|| EonError::ClusterDown("no nodes to cold-restart".into()))?;
        for node in &nodes {
            while node.catalog.version() < tip.catalog.version() {
                let records = tip.store.read_records_after(node.catalog.version())?;
                if records.is_empty() {
                    return Err(EonError::Corrupt(format!(
                        "cold restart: {} cannot reach v{} from durable logs",
                        node.id,
                        tip.catalog.version().0
                    )));
                }
                for rec in records {
                    node.catalog.apply_committed(&rec)?;
                    node.store.append_local(&rec)?;
                }
            }
            self.membership.add(node.clone());
        }
        Ok(tip.catalog.version())
    }

    /// Remove a node (§6.4): move its responsibilities elsewhere first
    /// (REMOVING until safe, §3.3), then decommission.
    pub fn remove_node(&self, id: NodeId) -> Result<()> {
        self.ensure_viable()?;
        let coord = self.pick_up_peer(id)?;
        let remaining: Vec<NodeId> = self
            .membership
            .up_ids()
            .into_iter()
            .filter(|n| *n != id)
            .collect();
        if remaining.is_empty() {
            return Err(EonError::ClusterDown("cannot remove the last node".into()));
        }
        // Rebalance onto the remaining nodes and promote them so every
        // shard is safe without the leaver.
        let mut txn = coord.catalog.begin();
        for op in rebalance_plan(&coord.catalog.snapshot(), &remaining, self.config.k_safety) {
            txn.push(op);
        }
        if !txn.is_empty() {
            self.commit_cluster(txn, &coord)?;
        }
        for n in &remaining {
            self.promote_subscriptions(*n, &coord)?;
        }

        // Drop the leaver's subscriptions, checking fault tolerance per
        // shard (§3.3: REMOVING holds until enough other subscribers).
        let subs: Vec<Subscription> = coord
            .catalog
            .snapshot()
            .subscriptions_of(id)
            .into_iter()
            .cloned()
            .collect();
        let mut txn = coord.catalog.begin();
        for s in &subs {
            if can_drop_subscription(&coord.catalog.snapshot(), id, s.shard, self.config.k_safety)
                || s.shard == self.replica_shard()
            {
                txn.push(CatalogOp::RemoveSubscription {
                    node: id,
                    shard: s.shard,
                });
            } else {
                return Err(EonError::CommitInvariant(format!(
                    "shard {} would lose fault tolerance",
                    s.shard
                )));
            }
        }
        self.commit_cluster(txn, &coord)?;
        if let Some(node) = self.membership.get(id) {
            node.kill();
            node.cache.clear()?;
        }
        self.membership.remove(id);
        Ok(())
    }

    /// Advance all of `id`'s PENDING subscriptions to ACTIVE via
    /// PASSIVE (metadata already transferred by `catch_up_node`). Also
    /// used by the supervisor's takeover pass (DESIGN.md "Failure
    /// detection & degraded modes").
    pub(crate) fn promote_subscriptions(&self, id: NodeId, coord: &Arc<NodeRuntime>) -> Result<()> {
        for target in [SubState::Passive, SubState::Active] {
            let subs: Vec<Subscription> = coord
                .catalog
                .snapshot()
                .subscriptions_of(id)
                .into_iter()
                .cloned()
                .collect();
            let mut txn = coord.catalog.begin();
            for s in subs {
                let advance = matches!(
                    (s.state, target),
                    (SubState::Pending, SubState::Passive) | (SubState::Passive, SubState::Active)
                );
                if advance {
                    txn.push(CatalogOp::UpsertSubscription(Subscription {
                        state: target,
                        ..s
                    }));
                }
            }
            if !txn.is_empty() {
                self.commit_cluster(txn, coord)?;
            }
        }
        Ok(())
    }

    /// Metadata transfer (§3.3): ship log records the node is missing;
    /// if the peer's log no longer covers the gap (checkpoint pruning),
    /// ship a full snapshot.
    fn catch_up_node(&self, node: &Arc<NodeRuntime>, peer: &Arc<NodeRuntime>) -> Result<()> {
        loop {
            let have = node.catalog.version();
            let want = peer.catalog.version();
            if have >= want {
                return Ok(());
            }
            let records = peer.store.read_records_after(have)?;
            if records.is_empty() {
                // Gap: full snapshot install.
                node.catalog
                    .install((*peer.catalog.snapshot()).clone(), peer.catalog.version());
                for oid in node.catalog.snapshot().obj_versions.keys() {
                    node.catalog.bump_oid_floor(oid.0);
                }
                node.checkpoint()?;
                return Ok(());
            }
            for rec in records {
                node.catalog.apply_committed(&rec)?;
                node.store.append_local(&rec)?;
            }
        }
    }

    /// Warm the node's cache from the best peer (§5.2): same
    /// subcluster preferred, MRU list within the cache capacity.
    fn warm_cache_from_peer(&self, node: &Arc<NodeRuntime>) -> Result<usize> {
        let my_sc = node.subcluster.load(Ordering::Relaxed);
        let peers = self.membership.up_nodes();
        let peer = peers
            .iter()
            .filter(|p| p.id != node.id)
            .max_by_key(|p| (p.subcluster.load(Ordering::Relaxed) == my_sc) as u8);
        match peer {
            Some(p) => {
                let budget = node.cache.capacity();
                node.cache.warm_from(&p.cache.mru_list(budget))
            }
            None => Ok(0),
        }
    }

    pub(crate) fn pick_up_peer(&self, not: NodeId) -> Result<Arc<NodeRuntime>> {
        self.membership
            .up_nodes()
            .into_iter()
            .find(|n| n.id != not)
            .ok_or_else(|| EonError::ClusterDown("no live peer".into()))
    }

    /// Revive a cluster from shared storage (§3.5): read
    /// `cluster_info.json`, refuse while the lease is live, recover the
    /// catalog at the truncation version, start fresh nodes under a new
    /// incarnation id, and commit the revive by writing a new
    /// `cluster_info.json`.
    pub fn revive(
        shared: eon_storage::SharedFs,
        config: EonConfig,
        now_ms: u64,
    ) -> Result<Arc<EonDb>> {
        let breaker = Self::build_breaker(&config);
        let shared =
            eon_storage::RetryFs::wrap_with_breaker(shared, &config.obs, breaker.clone());
        shared.install_select_engine(Arc::new(crate::pushdown::RosSelectEngine));
        let info = ClusterInfo::read(shared.as_ref())?
            .ok_or_else(|| EonError::Revive("no cluster_info.json on shared storage".into()))?;
        if info.lease_live(now_ms) {
            return Err(EonError::Revive(format!(
                "lease live until {}ms — another cluster may be running",
                info.lease_until_ms
            )));
        }
        let truncation = info.truncation_version;
        // Crash site: lease checked, nothing recovered yet — a retried
        // revive must start over cleanly.
        config.faults.hit(fault_site::REVIVE_POST_LEASE)?;

        // Find the best recoverable state at or below the truncation
        // version across the old incarnation's per-node uploads.
        let mut best: Option<(CatalogState, TxnVersion)> = None;
        for old_node in &info.nodes {
            let probe = eon_catalog::CatalogStore::new(
                Arc::new(eon_storage::MemFs::new()),
                shared.clone(),
                &format!("{}/node{}", info.incarnation, old_node),
            );
            if let Ok((state, v)) = probe.recover_from_shared(truncation) {
                if best.as_ref().map(|(_, bv)| v > *bv).unwrap_or(true) {
                    best = Some((state, v));
                }
            }
        }
        let (state, version) = best
            .ok_or_else(|| EonError::Revive("no recoverable catalog on shared storage".into()))?;
        if version < truncation {
            return Err(EonError::Revive(format!(
                "best recoverable version {version} below truncation {truncation}"
            )));
        }

        // Fresh incarnation id (§3.5): uploads from the revived cluster
        // land in a distinct namespace.
        let new_incarnation = format!("inc{:08x}", now_ms as u32 ^ 0x5eed_cafe);
        let db = Arc::new(EonDb {
            shared: shared.clone(),
            membership: eon_cluster::Membership::new(),
            incarnation: parking_lot::Mutex::new(new_incarnation.clone()),
            commit_lock: parking_lot::Mutex::new(()),
            session_counter: std::sync::atomic::AtomicU64::new(1),
            coordinator_counter: std::sync::atomic::AtomicU64::new(0),
            next_node_id: std::sync::atomic::AtomicU64::new(config.num_nodes as u64),
            instance_seed: std::sync::atomic::AtomicU64::new(now_ms | 1),
            reaper: crate::maintenance::Reaper::default(),
            admission: crate::admission::AdmissionControl::new(
                crate::admission::AdmissionLimits::from_config(&config),
                config.obs.clone(),
            ),
            breaker,
            supervisor: parking_lot::Mutex::new(crate::supervisor::SupervisorState::new(&config)),
            group_commit: crate::commit::GroupCommit::new(),
            commit_group_window: std::sync::atomic::AtomicU64::new(config.commit_group_window),
            halted: parking_lot::Mutex::new(None),
            config,
        });
        for i in 0..db.config.num_nodes {
            let node = db.commission_node(NodeId(i as u64));
            node.catalog.install(state.clone(), version);
            for oid in state.obj_versions.keys() {
                node.catalog.bump_oid_floor(oid.0);
            }
            node.store.truncate_local(version, &state)?;
            db.membership.add(node);
        }

        // Rewire subscriptions to the revived node set: the old
        // subscriptions referenced the previous cluster's nodes.
        let coord = db.membership.leader().expect("revived cluster has nodes");
        let mut txn = coord.catalog.begin();
        let old_subs: Vec<Subscription> =
            coord.catalog.snapshot().subscriptions.values().cloned().collect();
        let new_ids = db.membership.up_ids();
        for s in old_subs {
            if !new_ids.contains(&s.node) {
                txn.push(CatalogOp::RemoveSubscription {
                    node: s.node,
                    shard: s.shard,
                });
            }
        }
        for op in rebalance_plan(&coord.catalog.snapshot(), &new_ids, db.config.k_safety) {
            let op = match op {
                CatalogOp::UpsertSubscription(mut s) => {
                    s.state = SubState::Active;
                    CatalogOp::UpsertSubscription(s)
                }
                other => other,
            };
            txn.push(op);
        }
        for node in &new_ids {
            txn.push(CatalogOp::UpsertSubscription(Subscription {
                node: *node,
                shard: db.replica_shard(),
                state: SubState::Active,
            }));
        }
        db.commit_cluster(txn, &coord)?;

        // Crash site: cluster rebuilt in memory but the committing
        // `cluster_info.json` write never happens — the old info (and
        // its expired lease) still governs; a retried revive succeeds.
        db.config.faults.hit(fault_site::REVIVE_PRE_INFO_WRITE)?;

        // Commit point of revive: the new cluster_info.json (§3.5).
        let new_info = ClusterInfo {
            truncation_version: db.version(),
            incarnation: new_incarnation,
            database: db.config.database.clone(),
            timestamp_ms: now_ms,
            lease_until_ms: now_ms + db.config.lease_ms,
            nodes: new_ids.iter().map(|n| n.0).collect(),
        };
        new_info.write(shared.as_ref())?;
        Ok(db)
    }
}
