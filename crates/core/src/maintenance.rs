//! Background services: mergeout (§6.2), metadata sync + consensus
//! truncation + `cluster_info.json` (§3.5), and file deletion (§6.5).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use eon_cache::CacheMode;
use eon_catalog::{CatalogOp, ClusterInfo, SubState};
use eon_storage::fault::site as fault_site;
use eon_tm::{plan_mergeout, select_coordinators, MergeoutPolicy};
use eon_types::{Oid, Result, ShardId, TxnVersion};

use crate::db::EonDb;
use crate::provider::NodeProvider;

/// A shared-storage file whose catalog reference count hit zero at
/// `drop_version` — deletable once no query and no pending revive can
/// still reference it (§6.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingDelete {
    pub key: String,
    pub drop_version: TxnVersion,
}

/// Tracks zero-reference files awaiting safe deletion.
#[derive(Default)]
pub struct Reaper {
    pending: Mutex<Vec<PendingDelete>>,
}

impl Reaper {
    /// Register keys whose catalog references were dropped at
    /// `version`.
    pub fn note_dropped(&self, keys: Vec<String>, version: TxnVersion) {
        let mut g = self.pending.lock();
        for key in keys {
            g.push(PendingDelete {
                key,
                drop_version: version,
            });
        }
    }

    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Keys currently awaiting safe deletion (invariant-checker
    /// introspection: pending keys are accounted for, not leaked).
    pub fn pending_keys(&self) -> Vec<String> {
        self.pending.lock().iter().map(|p| p.key.clone()).collect()
    }

    /// Register keys a statement uploaded but never committed
    /// (DESIGN.md "Write pipeline" rollback rule). `TxnVersion::ZERO`
    /// makes them deletable immediately: no query snapshot and no
    /// truncation version can reference a file the catalog never saw.
    pub fn note_uncommitted(&self, keys: Vec<String>) {
        self.note_dropped(keys, TxnVersion::ZERO);
    }

    /// Take the deletes that are safe given the cluster's minimum
    /// in-flight query version and the durable truncation version
    /// (§6.5's two retention reasons).
    pub fn take_safe(&self, min_query_version: u64, truncation: TxnVersion) -> Vec<PendingDelete> {
        let mut g = self.pending.lock();
        let (safe, keep): (Vec<_>, Vec<_>) = g
            .drain(..)
            .partition(|p| min_query_version > p.drop_version.0 && truncation >= p.drop_version);
        *g = keep;
        safe
    }

    /// Put entries taken by [`Reaper::take_safe`] back on the pending
    /// list — a reap pass that failed part-way re-registers what it
    /// could not delete instead of leaking it.
    pub fn reinstate(&self, entries: Vec<PendingDelete>) {
        self.pending.lock().extend(entries);
    }
}

impl EonDb {
    /// Run one mergeout pass across every shard (§6.2): the shard's
    /// coordinator plans jobs from the strata algorithm, executes them
    /// (purging deleted rows), and commits the swap. Returns the number
    /// of jobs executed.
    pub fn run_mergeout(&self) -> Result<usize> {
        self.ensure_viable()?;
        let coord = self.pick_coordinator()?;
        let snapshot = coord.catalog.snapshot();

        // (Re-)elect coordinators for shards lacking a live one.
        let up = self.membership.up_ids();
        let mut shards_subs: Vec<(ShardId, Vec<eon_types::NodeId>)> = Vec::new();
        let mut all_shards = self.segment_shards();
        all_shards.push(self.replica_shard());
        for &s in &all_shards {
            let subs: Vec<_> = snapshot
                .subscribers_in(s, SubState::Active)
                .into_iter()
                .filter(|n| up.contains(n))
                .collect();
            shards_subs.push((s, subs));
        }
        let coordinators = select_coordinators(&shards_subs);
        {
            let mut txn = coord.catalog.begin();
            let mut changed = false;
            for (&shard, &node) in &coordinators {
                if snapshot.mergeout_coord.get(&shard) != Some(&node) {
                    txn.push(CatalogOp::SetMergeoutCoordinator { shard, node });
                    changed = true;
                }
            }
            if changed {
                self.commit_cluster(txn, &coord)?;
            }
        }

        let snapshot = coord.catalog.snapshot();
        let policy = MergeoutPolicy::default();
        let metrics = eon_tm::MergeoutMetrics::register(&self.config.obs);
        let mut jobs_run = 0;

        // Group containers by (projection, shard) and plan each group.
        let mut groups: HashMap<(Oid, ShardId), Vec<eon_tm::mergeout::MergeInput>> =
            HashMap::new();
        for c in snapshot.containers.values() {
            let deleted: u64 = snapshot
                .delete_vectors_for(c.oid)
                .iter()
                .map(|d| d.deleted_rows)
                .sum();
            groups.entry((c.projection, c.shard)).or_default().push(
                eon_tm::mergeout::MergeInput {
                    oid: c.oid,
                    rows: c.rows,
                    deleted,
                },
            );
        }

        // Fixed job order: HashMap iteration varies run to run, and if
        // a crash lands mid-mergeout the job being executed determines
        // which upload is orphaned — seeded chaos runs must replay
        // identically (DESIGN.md "Fault model").
        let mut groups: Vec<((Oid, ShardId), Vec<eon_tm::mergeout::MergeInput>)> =
            groups.into_iter().collect();
        groups.sort_by_key(|(k, _)| *k);
        for ((proj_oid, shard), mut inputs) in groups {
            inputs.sort_by_key(|i| (i.rows, i.oid));
            let jobs = plan_mergeout(&inputs, &policy);
            if jobs.is_empty() {
                continue;
            }
            // The coordinator for this shard runs the jobs (§6.2); it
            // could farm them out, we run them inline on that node.
            let worker_id = coordinators.get(&shard).copied();
            let Some(worker_id) = worker_id else { continue };
            let worker = match self.membership.get(worker_id) {
                Some(w) if w.is_up() => w,
                _ => continue,
            };

            for job in jobs {
                jobs_run += 1;
                self.execute_merge_job(&worker, proj_oid, shard, &job.inputs, &policy, &metrics)?;
            }
        }
        Ok(jobs_run)
    }

    /// Read the input containers (applying delete vectors), merge into
    /// one sorted container, commit Add+Drops, and register the old
    /// files with the reaper.
    fn execute_merge_job(
        &self,
        worker: &Arc<eon_cluster::NodeRuntime>,
        proj_oid: Oid,
        shard: ShardId,
        inputs: &[Oid],
        policy: &MergeoutPolicy,
        metrics: &eon_tm::MergeoutMetrics,
    ) -> Result<()> {
        let coord = self.pick_coordinator()?;
        let mut txn = coord.catalog.begin();
        let snapshot = txn.snapshot().clone();
        let Some((table, proj)) = snapshot.tables.values().find_map(|t| {
            t.projection(proj_oid).map(|p| (t.clone(), p.clone()))
        }) else {
            return Ok(()); // table dropped concurrently
        };

        let provider = NodeProvider {
            node: worker.clone(),
            snapshot: Arc::new(snapshot.clone()),
            my_shards: self.segment_shards(),
            all_shards: self.segment_shards(),
            replica_shard: self.replica_shard(),
            cache_mode: CacheMode::Normal,
            crunch: None,
            // Mergeout reads serially — its parallelism is across
            // jobs, not within one container scan.
            scan: crate::provider::ScanOptions {
                workers: 1,
                coalesce_gap: self.config.scan_coalesce_gap,
                late_materialization: self.config.scan_late_materialization,
                encoded_exec: !self.config.scan_decode_first,
                // Mergeout rewrites whole containers; there is nothing
                // to push below the GET.
                pushdown: false,
                pushdown_max_selectivity: self.config.pushdown_max_selectivity,
                pushdown_min_bytes: self.config.pushdown_min_bytes,
                pushdown_max_groups: self.config.pushdown_max_groups,
                obs: self.config.obs.clone(),
                profile: None,
                cancel: None,
            },
        };

        // Gather each input's surviving rows (already sorted within a
        // container) and k-way merge on the sort order.
        let mut batches = Vec::with_capacity(inputs.len());
        for oid in inputs {
            let Some(c) = snapshot.containers.get(oid) else {
                return Ok(()); // concurrent mergeout took it
            };
            let rows = self.read_container_rows(&provider, &table, &proj, c)?;
            batches.push(rows);
            txn.push(CatalogOp::DropContainer(*oid));
        }
        let merged = eon_tm::merge_sorted_rows(batches, &proj.sort.0);
        let mut rewritten = (0u64, 0u64, 0usize); // rows, bytes, stratum
        if !merged.is_empty() {
            // Crash site: inputs read, merged container not yet written
            // — nothing on shared storage changes.
            self.config.faults.hit(fault_site::MERGEOUT_PRE_WRITE)?;
            let meta =
                self.write_container(worker, &proj, proj_oid, table.oid, shard, merged, &coord)?;
            rewritten = (meta.rows, meta.size_bytes, policy.stratum(meta.rows));
            txn.push(CatalogOp::AddContainer(meta));
        }
        // Crash site: the merged container is uploaded but the Add+Drop
        // swap never commits — old containers stay live (queries must
        // still answer from them) and the new file is an orphan (§6.5).
        self.config.faults.hit(fault_site::MERGEOUT_PRE_COMMIT)?;
        // The commit path registers the dropped files with the reaper.
        self.commit_cluster(txn, &coord)?;
        metrics.record_job(inputs.len(), rewritten.0, rewritten.1, rewritten.2);
        Ok(())
    }

    /// All rows of one container with delete vectors applied, in the
    /// projection's column space and sort order.
    fn read_container_rows(
        &self,
        provider: &NodeProvider,
        table: &eon_catalog::Table,
        proj: &eon_columnar::Projection,
        c: &eon_catalog::ContainerMeta,
    ) -> Result<Vec<Vec<eon_types::Value>>> {
        use eon_columnar::Predicate;
        let width = proj.columns.len();
        let read_cols: Vec<usize> = (0..width).collect();
        let hits = provider.scan_container_for_merge(
            table,
            proj,
            c,
            &read_cols,
            &Predicate::True,
            width,
        )?;
        Ok(hits)
    }

    /// Upload every node's catalog to shared storage, compute the
    /// consensus truncation version (Fig 5), and write
    /// `cluster_info.json` (§3.5). Returns the info written.
    pub fn sync_metadata(&self, now_ms: u64) -> Result<ClusterInfo> {
        let mut intervals = HashMap::new();
        for node in self.membership.up_nodes() {
            node.checkpoint()?;
            let si = node.store.sync_to_shared()?;
            intervals.insert(node.id, si);
        }
        let snapshot = self.snapshot()?;
        let mut subscribers: HashMap<ShardId, Vec<eon_types::NodeId>> = HashMap::new();
        let mut shards = self.segment_shards();
        shards.push(self.replica_shard());
        for s in shards {
            subscribers.insert(s, snapshot.subscribers_in(s, SubState::Active));
        }
        let truncation = eon_shard::consensus_truncation(&subscribers, &intervals)
            .ok_or_else(|| eon_types::EonError::Internal("no consensus truncation".into()))?;
        // Crash site: catalogs uploaded but `cluster_info.json` never
        // rewritten — revive must work from the *previous* info's
        // truncation version (§3.5).
        self.config.faults.hit(fault_site::SYNC_PRE_INFO_WRITE)?;
        let info = ClusterInfo {
            truncation_version: truncation,
            incarnation: self.incarnation(),
            database: self.config.database.clone(),
            timestamp_ms: now_ms,
            lease_until_ms: now_ms + self.config.lease_ms,
            nodes: self.membership.up_ids().iter().map(|n| n.0).collect(),
        };
        info.write(self.shared.as_ref())?;
        Ok(info)
    }

    /// Delete zero-reference files whose retention conditions have
    /// passed (§6.5). Returns keys deleted.
    ///
    /// A failed DELETE must not lose the entry: every key the pass
    /// could not remove — the failed one and any it never reached — is
    /// reinstated on the pending list for the next pass. Ambiguous S3
    /// outcomes (the delete applied but the response was lost) are
    /// safe to re-register too: deleting a missing object is not an
    /// error, so the retry is a no-op.
    /// Invariant-checker introspection: shared-storage keys currently
    /// awaiting safe deletion. Rollback tests use this to prove a
    /// failed statement's uploads are accounted for, not leaked.
    pub fn reaper_pending_keys(&self) -> Vec<String> {
        self.reaper.pending_keys()
    }

    pub fn reap_files(&self) -> Result<Vec<String>> {
        // No up nodes = no attestation that old versions are unread (a
        // restarting node may resume a query): skip the pass entirely
        // rather than treat a full outage as "fully quiescent".
        let Some(min_q) = self.membership.min_query_version() else {
            return Ok(Vec::new());
        };
        let truncation = ClusterInfo::read(self.shared.as_ref())?
            .map(|i| i.truncation_version)
            .unwrap_or(TxnVersion::ZERO);
        let safe = self.reaper.take_safe(min_q, truncation);
        let mut deleted = Vec::with_capacity(safe.len());
        let mut kept = Vec::new();
        let mut first_err = None;
        for p in safe {
            match self.shared.delete(&p.key) {
                Ok(()) => {
                    for node in self.membership.up_nodes() {
                        // A failed local evict never justifies leaking
                        // the shared file; the cache copy dies with the
                        // node's instance storage anyway.
                        let _ = node.cache.evict(&p.key);
                    }
                    deleted.push(p.key);
                }
                Err(e) => {
                    kept.push(p);
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if !kept.is_empty() {
            self.config
                .obs
                .counter("reaper_reinstated_total", &[("subsystem", "reaper")])
                .add(kept.len() as u64);
            self.reaper.reinstate(kept);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(deleted),
        }
    }

    /// The §6.5 fallback: enumerate shared storage, delete any data
    /// file no node references, skipping files whose name carries a
    /// live node's instance id (they may be mid-creation). Run manually
    /// after crashes.
    pub fn leak_scan(&self) -> Result<Vec<String>> {
        let mut referenced: std::collections::HashSet<String> = std::collections::HashSet::new();
        for node in self.membership.up_nodes() {
            let snap = node.catalog.snapshot();
            referenced.extend(snap.containers.values().map(|c| c.key.clone()));
            referenced.extend(snap.delete_vectors.values().map(|d| d.key.clone()));
        }
        // Pending (not yet reaped) drops are known, not leaked.
        {
            let g = self.reaper.pending.lock();
            referenced.extend(g.iter().map(|p| p.key.clone()));
        }
        let live_instances: Vec<eon_storage::InstanceId> = self
            .membership
            .up_nodes()
            .iter()
            .map(|n| n.instance())
            .collect();
        let mut deleted = Vec::new();
        for key in self.shared.list("data/")? {
            if referenced.contains(&key) {
                continue;
            }
            if live_instances
                .iter()
                .any(|inst| eon_storage::StorageId::key_has_instance(&key, *inst))
            {
                continue; // §6.5: skip live instance prefixes
            }
            self.shared.delete(&key)?;
            deleted.push(key);
        }
        Ok(deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_columnar::pruning::CmpOp;
    use eon_columnar::{Predicate, Projection};
    use eon_exec::{AggSpec, Plan, ScanSpec};
    use eon_storage::MemFs;
    use eon_types::{schema, Value};

    fn db_many_containers() -> Arc<EonDb> {
        let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
        let s = schema![("id", Int), ("v", Int)];
        db.create_table(
            "t",
            s.clone(),
            vec![Projection::super_projection("p", &s, &[0], &[0])],
        )
        .unwrap();
        // Many small loads → many containers per shard.
        for batch in 0..6 {
            let rows = (0..300)
                .map(|i| vec![Value::Int(batch * 300 + i), Value::Int(1)])
                .collect();
            db.copy_into("t", rows).unwrap();
        }
        db
    }

    fn count(db: &EonDb) -> i64 {
        let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()]);
        db.query(&plan).unwrap()[0][0].as_int().unwrap()
    }

    #[test]
    fn mergeout_reduces_containers_preserving_data() {
        let db = db_many_containers();
        let before = db.snapshot().unwrap().containers.len();
        assert_eq!(count(&db), 1800);
        let jobs = db.run_mergeout().unwrap();
        assert!(jobs > 0, "expected mergeout work");
        let after = db.snapshot().unwrap().containers.len();
        assert!(after < before, "{after} !< {before}");
        assert_eq!(count(&db), 1800, "mergeout must not lose rows");
    }

    #[test]
    fn mergeout_purges_deleted_rows() {
        let db = db_many_containers();
        db.delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 900i64)).unwrap();
        assert_eq!(count(&db), 900);
        db.run_mergeout().unwrap();
        assert_eq!(count(&db), 900);
        // After merge, delete vectors for merged containers are gone.
        let snap = db.snapshot().unwrap();
        let live_rows: u64 = snap.containers.values().map(|c| c.rows).sum();
        assert_eq!(live_rows, 900, "purge should shrink physical rows");
    }

    #[test]
    fn mergeout_selects_coordinators_per_shard() {
        let db = db_many_containers();
        db.run_mergeout().unwrap();
        let snap = db.snapshot().unwrap();
        for s in db.segment_shards() {
            let coord = snap.mergeout_coord.get(&s).copied();
            assert!(coord.is_some(), "no coordinator for {s}");
            // Coordinator must subscribe to the shard.
            assert!(snap
                .subscribers_in(s, SubState::Active)
                .contains(&coord.unwrap()));
        }
    }

    #[test]
    fn sync_writes_cluster_info_with_consensus() {
        let db = db_many_containers();
        let info = db.sync_metadata(1_000).unwrap();
        assert_eq!(info.truncation_version, db.version());
        assert!(info.lease_live(1_500));
        let read_back = ClusterInfo::read(db.shared().as_ref()).unwrap().unwrap();
        assert_eq!(read_back, info);
    }

    #[test]
    fn reaper_holds_files_until_safe() {
        let db = db_many_containers();
        let keys_before: Vec<String> = db.shared().list("data/").unwrap();
        db.run_mergeout().unwrap();
        assert!(db.reaper.pending_count() > 0);
        // Without a truncation version advanced past the drop, nothing
        // reaps.
        let deleted = db.reap_files().unwrap();
        assert!(deleted.is_empty(), "reaped too early: {deleted:?}");
        // Sync metadata (advances truncation), then reap.
        db.sync_metadata(1_000).unwrap();
        let deleted = db.reap_files().unwrap();
        assert!(!deleted.is_empty());
        for k in &deleted {
            assert!(!db.shared().exists(k).unwrap());
            assert!(keys_before.contains(k));
        }
        // Live data still queryable.
        assert_eq!(count(&db), 1800);
    }

    #[test]
    fn leak_scan_removes_orphans_only() {
        let db = db_many_containers();
        // Plant a leaked file with a dead instance prefix.
        db.shared()
            .write("data/aa/deadbeef_leaked", bytes::Bytes::from_static(b"x"))
            .unwrap();
        // Plant a file with a live node's instance id — must survive.
        let live = db.membership().up_nodes()[0].next_sid().object_key();
        db.shared().write(&live, bytes::Bytes::from_static(b"y")).unwrap();
        let deleted = db.leak_scan().unwrap();
        assert!(deleted.contains(&"data/aa/deadbeef_leaked".to_owned()));
        assert!(!deleted.contains(&live));
        assert_eq!(count(&db), 1800);
    }
}
