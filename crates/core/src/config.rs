//! Database configuration.

use eon_storage::fault::FaultPlan;
use eon_storage::FaultInjector;

/// Configuration for an Eon-mode database. The segment shard count is
/// fixed at creation (§3.1); everything else can vary over the
/// database's life.
#[derive(Debug, Clone)]
pub struct EonConfig {
    pub database: String,
    /// Initial node count.
    pub num_nodes: usize,
    /// Segment shard count — immutable after creation.
    pub num_shards: usize,
    /// Node failures tolerated (shards get `k_safety + 1` subscribers).
    pub k_safety: usize,
    /// Execution slots per node (the `E` of §4.2).
    pub exec_slots: usize,
    /// Depot capacity per node, bytes.
    pub cache_bytes: u64,
    /// Lease duration stamped into `cluster_info.json`, milliseconds.
    pub lease_ms: u64,
    /// Simulated per-fragment service time, milliseconds (0 = off).
    /// Models each node's fixed compute capacity: a query fragment
    /// occupies its execution slots for at least this long. Needed for
    /// throughput experiments because in-process simulated nodes share
    /// the host CPU (DESIGN.md §1) — without it, 3 simulated nodes and
    /// 9 simulated nodes have identical total compute.
    pub fragment_ms: u64,
    /// Crash-point fault plan (DESIGN.md "Fault model"). Inert by
    /// default; chaos tests install a seeded [`FaultPlan`] to kill the
    /// process at a named commit-path site. Shared (`Arc`) so every
    /// layer sees the same one-shot schedule.
    pub faults: FaultInjector,
    /// Metrics registry (DESIGN.md "Observability"). Every subsystem
    /// the database commissions — depots, exec slots, retry layer,
    /// coordinator, tuple mover — registers its counters here. Shared
    /// (`Arc` inside), so benches can hand in their own registry and
    /// snapshot it after a run.
    pub obs: eon_obs::Registry,
    /// Scan-pool workers per node for query scans (DESIGN.md "Scan
    /// pipeline"). `0` = auto: one worker per execution slot. `1`
    /// forces the serial scan path. Always clamped to `exec_slots`.
    pub scan_workers: usize,
    /// Coalesce block ranged-reads whose gap is at most this many
    /// bytes; `None` issues one read per surviving block.
    pub scan_coalesce_gap: Option<u64>,
    /// Selection-vector predicate evaluation with late
    /// materialization of non-predicate columns.
    pub scan_late_materialization: bool,
    /// Force the decode-first scan path: every block is fully decoded
    /// to rows before predicates see it, as before compression-aware
    /// execution. Off by default; the A/B knob for
    /// `tests/encoded_exec_prop.rs` and the `ablate_scan` bench.
    pub scan_decode_first: bool,
    /// S3-Select-style pushdown (DESIGN.md "Pushdown execution"): run
    /// eligible predicates, projections, and partial aggregates inside
    /// the store via the `select` verb instead of fetching blocks with
    /// plain GETs. Output is byte-identical either way; this is purely
    /// a cost/latency knob.
    pub pushdown: bool,
    /// Crossover policy: push a rows-mode select only when the
    /// footer-stats selectivity estimate is at or below this fraction.
    /// Unselective scans return most bytes anyway, so a select would
    /// add scan charges on top of near-full transfer.
    pub pushdown_max_selectivity: f64,
    /// Crossover policy: push only when the plain-GET scan would fetch
    /// at least this many bytes from the container. Keeps tiny
    /// containers — where per-request overhead dominates — on the plain
    /// path.
    pub pushdown_min_bytes: u64,
    /// Partial-aggregate pushdown: the store declines a select that
    /// produces more groups than this, falling back to the local fold.
    pub pushdown_max_groups: u64,
    /// Force every container block onto one encoding instead of the
    /// per-block heuristic (blocks the encoding can't represent fall
    /// back). Testing knob for encoding-equivalence properties.
    pub force_encoding: Option<eon_columnar::Encoding>,
    /// Single-flight depot fills: concurrent misses on one key share
    /// one backing GET.
    pub depot_single_flight: bool,
    /// Write-pool workers for loads (DESIGN.md "Write pipeline"): how
    /// many independent (projection, shard) container uploads a COPY /
    /// DML statement runs concurrently. `0` = auto: one worker per
    /// execution slot. `1` forces the serial write path. Always
    /// clamped to `exec_slots`; forced to 1 while a fault plan is
    /// armed so seeded crash schedules replay identically.
    pub load_workers: usize,
    /// Admission control (DESIGN.md "Admission control & workload
    /// management"): max concurrently *running* queries per subcluster
    /// resource pool. `0` disables admission control entirely — every
    /// session goes straight to the exec-slot semaphore.
    pub admission_max_concurrent: usize,
    /// Max sessions *waiting* in a pool's admission queue before new
    /// arrivals are rejected with `EonError::Saturated`. `0` =
    /// unbounded queue (sessions still time out).
    pub admission_max_queue: usize,
    /// Planned-wait budget for a queued session, milliseconds; expiry
    /// returns `EonError::DeadlineExceeded`. `0` = wait until admitted
    /// (or cancelled).
    pub admission_timeout_ms: u64,
    /// Planned-wait budget for a query worker's execution-slot
    /// acquisition, milliseconds. `0` = wait until slots free up or the
    /// node dies. Bounded by default: a saturated node sheds the
    /// session instead of parking it forever.
    pub slot_wait_ms: u64,
    /// S3 circuit breaker (DESIGN.md "Failure detection & degraded
    /// modes"): consecutive exhausted-retry storage failures before the
    /// breaker opens and writes fast-fail with `StoreUnavailable`.
    /// `0` disables the breaker (the historical always-retry shape).
    pub breaker_failure_threshold: u32,
    /// Fast-failed operations while the breaker is open before it
    /// half-opens and lets a probe through. Counted in operations, not
    /// wall clock, so the half-open point is deterministic.
    pub breaker_cooldown: u32,
    /// Probe successes required to close a half-open breaker.
    pub breaker_half_open_probes: u32,
    /// Failure detector: missed heartbeat ticks before SUSPECT.
    pub health_suspect_after: u32,
    /// Missed heartbeat ticks before DOWN (≥ `health_suspect_after`).
    pub health_down_after: u32,
    /// Consecutive probe hits before a flapping node is declared
    /// recovered (hysteresis; see `eon_cluster::FailureDetector`).
    pub health_recover_after: u32,
    /// Supervisor auto-restart: ticks a node stays declared DOWN before
    /// the supervisor re-admits it through the `restart_node` path.
    /// `0` disables auto-restart (detection and takeover still run).
    pub supervisor_restart_ticks: u64,
    /// Group commit (DESIGN.md "Group commit"): how many deterministic
    /// accumulation ticks the batch leader waits for followers to join
    /// before closing the batch. `0` = serial commit, today's shape:
    /// every statement pays its own log append and distribution
    /// round-trip.
    pub commit_group_window: u64,
    /// Max statements per commit batch; the leader closes the batch
    /// early when it fills. Ignored while the window is 0.
    pub commit_group_max: usize,
    /// Simulated per-append log fsync cost, microseconds (0 = off).
    /// Models the fixed durable-write latency a real redo log pays per
    /// append — the cost group commit amortizes. Needed for commit
    /// throughput experiments because the in-process local log is a
    /// MemFs with free writes (same reason `fragment_ms` exists).
    pub commit_append_us: u64,
}

impl Default for EonConfig {
    fn default() -> Self {
        EonConfig {
            database: "eon".into(),
            num_nodes: 3,
            num_shards: 3,
            k_safety: 1,
            exec_slots: 4,
            cache_bytes: 256 << 20,
            lease_ms: 10_000,
            fragment_ms: 0,
            faults: FaultPlan::inert(),
            obs: eon_obs::Registry::new(),
            scan_workers: 0,
            scan_coalesce_gap: Some(crate::provider::DEFAULT_COALESCE_GAP),
            scan_late_materialization: true,
            scan_decode_first: false,
            pushdown: true,
            pushdown_max_selectivity: 0.25,
            pushdown_min_bytes: 32 * 1024,
            pushdown_max_groups: 64,
            force_encoding: None,
            depot_single_flight: true,
            load_workers: 0,
            admission_max_concurrent: 0,
            admission_max_queue: 0,
            admission_timeout_ms: 10_000,
            slot_wait_ms: 10_000,
            breaker_failure_threshold: 0,
            breaker_cooldown: 8,
            breaker_half_open_probes: 1,
            health_suspect_after: 2,
            health_down_after: 4,
            health_recover_after: 2,
            supervisor_restart_ticks: 4,
            commit_group_window: 0,
            commit_group_max: 16,
            commit_append_us: 0,
        }
    }
}

impl EonConfig {
    pub fn new(num_nodes: usize, num_shards: usize) -> Self {
        EonConfig {
            num_nodes,
            num_shards,
            ..Default::default()
        }
    }

    pub fn k_safety(mut self, k: usize) -> Self {
        self.k_safety = k;
        self
    }

    pub fn exec_slots(mut self, e: usize) -> Self {
        self.exec_slots = e;
        self
    }

    pub fn cache_bytes(mut self, b: u64) -> Self {
        self.cache_bytes = b;
        self
    }

    pub fn fragment_ms(mut self, ms: u64) -> Self {
        self.fragment_ms = ms;
        self
    }

    pub fn faults(mut self, plan: FaultInjector) -> Self {
        self.faults = plan;
        self
    }

    /// Use `registry` for all of this database's metrics.
    pub fn observability(mut self, registry: eon_obs::Registry) -> Self {
        self.obs = registry;
        self
    }

    /// Scan-pool width per node (`0` = one worker per exec slot).
    pub fn scan_workers(mut self, w: usize) -> Self {
        self.scan_workers = w;
        self
    }

    /// Ranged-read coalescing gap in bytes (`None` = off).
    pub fn scan_coalesce_gap(mut self, gap: Option<u64>) -> Self {
        self.scan_coalesce_gap = gap;
        self
    }

    /// Toggle selection-vector filtering with late materialization.
    pub fn scan_late_materialization(mut self, on: bool) -> Self {
        self.scan_late_materialization = on;
        self
    }

    /// Force the decode-first scan path (disable compression-aware
    /// execution) for A/B comparison.
    pub fn scan_decode_first(mut self, on: bool) -> Self {
        self.scan_decode_first = on;
        self
    }

    /// Toggle S3-Select-style pushdown (the A/B knob for
    /// `ablate_pushdown` and the equivalence property tests).
    pub fn pushdown(mut self, on: bool) -> Self {
        self.pushdown = on;
        self
    }

    /// Rows-mode crossover: maximum estimated selectivity to push.
    pub fn pushdown_max_selectivity(mut self, frac: f64) -> Self {
        self.pushdown_max_selectivity = frac;
        self
    }

    /// Crossover floor: minimum plain-GET bytes before a select pays.
    pub fn pushdown_min_bytes(mut self, bytes: u64) -> Self {
        self.pushdown_min_bytes = bytes;
        self
    }

    /// Partial-aggregate group-cardinality cap for pushed selects.
    pub fn pushdown_max_groups(mut self, groups: u64) -> Self {
        self.pushdown_max_groups = groups;
        self
    }

    /// Force one block encoding at write time (`None` = heuristic).
    pub fn force_encoding(mut self, enc: Option<eon_columnar::Encoding>) -> Self {
        self.force_encoding = enc;
        self
    }

    /// Toggle single-flight depot fills.
    pub fn depot_single_flight(mut self, on: bool) -> Self {
        self.depot_single_flight = on;
        self
    }

    /// Write-pool width for loads (`0` = one worker per exec slot).
    pub fn load_workers(mut self, w: usize) -> Self {
        self.load_workers = w;
        self
    }

    /// Admission pool size: max concurrently running queries per
    /// subcluster (`0` = admission control off).
    pub fn admission_max_concurrent(mut self, n: usize) -> Self {
        self.admission_max_concurrent = n;
        self
    }

    /// Admission queue depth per subcluster pool (`0` = unbounded).
    pub fn admission_max_queue(mut self, n: usize) -> Self {
        self.admission_max_queue = n;
        self
    }

    /// Admission queue timeout, milliseconds (`0` = no deadline).
    pub fn admission_timeout_ms(mut self, ms: u64) -> Self {
        self.admission_timeout_ms = ms;
        self
    }

    /// Execution-slot wait deadline, milliseconds (`0` = no deadline).
    pub fn slot_wait_ms(mut self, ms: u64) -> Self {
        self.slot_wait_ms = ms;
        self
    }

    /// Enable the S3 circuit breaker: open after `failure_threshold`
    /// consecutive exhausted-retry failures, half-open after `cooldown`
    /// fast-fails, close after `half_open_probes` probe successes.
    pub fn breaker(mut self, failure_threshold: u32, cooldown: u32, half_open_probes: u32) -> Self {
        self.breaker_failure_threshold = failure_threshold;
        self.breaker_cooldown = cooldown;
        self.breaker_half_open_probes = half_open_probes;
        self
    }

    /// Failure-detector thresholds in ticks: SUSPECT after `suspect`
    /// misses, DOWN after `down`, recovered after `recover` hits.
    pub fn health_ticks(mut self, suspect: u32, down: u32, recover: u32) -> Self {
        self.health_suspect_after = suspect;
        self.health_down_after = down;
        self.health_recover_after = recover;
        self
    }

    /// Supervisor auto-restart delay in ticks (`0` = off).
    pub fn supervisor_restart_ticks(mut self, ticks: u64) -> Self {
        self.supervisor_restart_ticks = ticks;
        self
    }

    /// Group-commit accumulation window in ticks (`0` = serial commit).
    pub fn commit_group_window(mut self, ticks: u64) -> Self {
        self.commit_group_window = ticks;
        self
    }

    /// Max statements per commit batch.
    pub fn commit_group_max(mut self, n: usize) -> Self {
        self.commit_group_max = n.max(1);
        self
    }

    /// Simulated per-append log fsync cost, microseconds (`0` = off).
    pub fn commit_append_us(mut self, us: u64) -> Self {
        self.commit_append_us = us;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder() {
        let c = EonConfig::new(4, 3).k_safety(2).exec_slots(8).cache_bytes(1024);
        assert_eq!(c.num_nodes, 4);
        assert_eq!(c.num_shards, 3);
        assert_eq!(c.k_safety, 2);
        assert_eq!(c.exec_slots, 8);
        assert_eq!(c.cache_bytes, 1024);
    }
}
