//! Database configuration.

use eon_storage::fault::FaultPlan;
use eon_storage::FaultInjector;

/// Configuration for an Eon-mode database. The segment shard count is
/// fixed at creation (§3.1); everything else can vary over the
/// database's life.
#[derive(Debug, Clone)]
pub struct EonConfig {
    pub database: String,
    /// Initial node count.
    pub num_nodes: usize,
    /// Segment shard count — immutable after creation.
    pub num_shards: usize,
    /// Node failures tolerated (shards get `k_safety + 1` subscribers).
    pub k_safety: usize,
    /// Execution slots per node (the `E` of §4.2).
    pub exec_slots: usize,
    /// Depot capacity per node, bytes.
    pub cache_bytes: u64,
    /// Lease duration stamped into `cluster_info.json`, milliseconds.
    pub lease_ms: u64,
    /// Simulated per-fragment service time, milliseconds (0 = off).
    /// Models each node's fixed compute capacity: a query fragment
    /// occupies its execution slots for at least this long. Needed for
    /// throughput experiments because in-process simulated nodes share
    /// the host CPU (DESIGN.md §1) — without it, 3 simulated nodes and
    /// 9 simulated nodes have identical total compute.
    pub fragment_ms: u64,
    /// Crash-point fault plan (DESIGN.md "Fault model"). Inert by
    /// default; chaos tests install a seeded [`FaultPlan`] to kill the
    /// process at a named commit-path site. Shared (`Arc`) so every
    /// layer sees the same one-shot schedule.
    pub faults: FaultInjector,
    /// Metrics registry (DESIGN.md "Observability"). Every subsystem
    /// the database commissions — depots, exec slots, retry layer,
    /// coordinator, tuple mover — registers its counters here. Shared
    /// (`Arc` inside), so benches can hand in their own registry and
    /// snapshot it after a run.
    pub obs: eon_obs::Registry,
}

impl Default for EonConfig {
    fn default() -> Self {
        EonConfig {
            database: "eon".into(),
            num_nodes: 3,
            num_shards: 3,
            k_safety: 1,
            exec_slots: 4,
            cache_bytes: 256 << 20,
            lease_ms: 10_000,
            fragment_ms: 0,
            faults: FaultPlan::inert(),
            obs: eon_obs::Registry::new(),
        }
    }
}

impl EonConfig {
    pub fn new(num_nodes: usize, num_shards: usize) -> Self {
        EonConfig {
            num_nodes,
            num_shards,
            ..Default::default()
        }
    }

    pub fn k_safety(mut self, k: usize) -> Self {
        self.k_safety = k;
        self
    }

    pub fn exec_slots(mut self, e: usize) -> Self {
        self.exec_slots = e;
        self
    }

    pub fn cache_bytes(mut self, b: u64) -> Self {
        self.cache_bytes = b;
        self
    }

    pub fn fragment_ms(mut self, ms: u64) -> Self {
        self.fragment_ms = ms;
        self
    }

    pub fn faults(mut self, plan: FaultInjector) -> Self {
        self.faults = plan;
        self
    }

    /// Use `registry` for all of this database's metrics.
    pub fn observability(mut self, registry: eon_obs::Registry) -> Self {
        self.obs = registry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder() {
        let c = EonConfig::new(4, 3).k_safety(2).exec_slots(8).cache_bytes(1024);
        assert_eq!(c.num_nodes, 4);
        assert_eq!(c.num_shards, 3);
        assert_eq!(c.k_safety, 2);
        assert_eq!(c.exec_slots, 8);
        assert_eq!(c.cache_bytes, 1024);
    }
}
