//! Self-healing supervisor (DESIGN.md "Failure detection & degraded
//! modes").
//!
//! Vertica's Eon mode keeps serving through node failures because shard
//! *subscriptions*, not data placement, define responsibility (§3.3,
//! §6.1): when a node dies, the survivors already hold every shard's
//! data on shared storage — the cluster only has to rewire
//! subscriptions so the remaining nodes cover the dead node's shards.
//! This module automates that repair loop:
//!
//! 1. **Detect** — a deterministic tick-driven
//!    [`eon_cluster::FailureDetector`] probes node liveness; `SUSPECT`
//!    after `health_suspect_after` missed beats, `DOWN` after
//!    `health_down_after`, with hysteresis so a flapping node is
//!    declared down once instead of thrashing the rebalancer.
//! 2. **Take over** — a `DOWN` declaration schedules a repair pass:
//!    [`eon_shard::rebalance_plan`] over the surviving nodes creates
//!    PENDING subscriptions restoring shard coverage and k-safety, and
//!    the survivors promote them ACTIVE. Subscriptions belonging to a
//!    commissioned-but-down node are never dropped by the supervisor —
//!    the node is expected back (decommissioning is `remove_node`'s
//!    job), and its subscriptions re-activate through the §3.3
//!    re-subscription path on restart.
//! 3. **Re-admit** — a node that stays down `supervisor_restart_ticks`
//!    ticks is restarted through the existing [`EonDb::restart_node`]
//!    path (catalog catch-up, re-subscription, cache warm), and a
//!    follow-up repair pass trims the takeover surplus so the layout
//!    converges back to the ring.
//!
//! Everything is counted in ticks and operations — no wall clock — so
//! the same kill/flap schedule yields a byte-identical detection trace
//! and repair sequence (the repo's determinism rules).

use std::collections::HashMap;
use std::fmt;

use eon_catalog::{CatalogOp, SubState, Subscription};
use eon_cluster::{FailureDetector, HealthConfig, HealthEvent, HealthTransition, NodeHealth};
use eon_types::{EonError, NodeId, Result};

use crate::config::EonConfig;
use crate::db::EonDb;

/// Cluster-health state machine, most to least healthy. Computed on
/// demand from viability (§3.4), breaker state, and node liveness;
/// enforced at the admission front doors ([`EonDb::admit_read`] /
/// [`EonDb::admit_write`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterHealth {
    /// Every commissioned node up, storage answering.
    Healthy,
    /// Quorum and shard coverage hold but some node is down — service
    /// continues on the survivors.
    Degraded { reason: String },
    /// Shared storage is browned out (circuit breaker open): depot-only
    /// reads still serve; writes fast-fail with `StoreUnavailable`.
    ReadOnly { reason: String },
    /// Lost quorum or shard coverage — nothing can be served (§3.4).
    Down { reason: String },
}

impl fmt::Display for ClusterHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterHealth::Healthy => write!(f, "HEALTHY"),
            ClusterHealth::Degraded { reason } => write!(f, "DEGRADED ({reason})"),
            ClusterHealth::ReadOnly { reason } => write!(f, "READ-ONLY ({reason})"),
            ClusterHealth::Down { reason } => write!(f, "DOWN ({reason})"),
        }
    }
}

/// What one supervisor tick observed and did.
#[derive(Debug, Clone, Default)]
pub struct SupervisorReport {
    /// Detector tick this report belongs to.
    pub tick: u64,
    /// Health transitions declared this tick.
    pub events: Vec<HealthEvent>,
    /// Subscription-repair catalog ops committed this tick.
    pub takeover_ops: usize,
    /// Nodes auto-restarted through the `restart_node` path.
    pub restarted: Vec<NodeId>,
    /// Non-fatal repair errors; the supervisor retries next tick.
    pub errors: Vec<String>,
}

impl SupervisorReport {
    /// Did this tick change anything (declare, repair, or restart)?
    pub fn acted(&self) -> bool {
        !self.events.is_empty() || self.takeover_ops > 0 || !self.restarted.is_empty()
    }
}

/// Mutable supervisor state behind `EonDb`'s mutex.
pub struct SupervisorState {
    pub(crate) detector: FailureDetector,
    /// Tick at which each currently-down node was declared DOWN.
    down_since: HashMap<NodeId, u64>,
    /// A repair pass is owed (set by DOWN/RECOVERED declarations and
    /// restarts; cleared when a pass commits nothing).
    needs_rebalance: bool,
    restart_ticks: u64,
}

impl SupervisorState {
    pub(crate) fn new(config: &EonConfig) -> Self {
        SupervisorState {
            detector: FailureDetector::new(HealthConfig {
                suspect_after: config.health_suspect_after,
                down_after: config.health_down_after,
                recover_after: config.health_recover_after,
            }),
            down_since: HashMap::new(),
            needs_rebalance: false,
            restart_ticks: config.supervisor_restart_ticks,
        }
    }
}

impl EonDb {
    /// Where the cluster stands right now. Ordered: loss of quorum or
    /// shard coverage dominates a storage brownout dominates a down
    /// node.
    pub fn cluster_health(&self) -> ClusterHealth {
        // A divergence halt (§3.4) dominates everything: nodes disagree
        // on metadata, so no answer can be trusted until revive.
        if let Some(reason) = self.halted.lock().clone() {
            return ClusterHealth::Down { reason };
        }
        if let Err(e) = self.ensure_viable() {
            let reason = match e {
                EonError::ClusterDown(r) => r,
                other => other.to_string(),
            };
            return ClusterHealth::Down { reason };
        }
        if let Some(b) = &self.breaker {
            if b.is_open() {
                return ClusterHealth::ReadOnly {
                    reason: "shared-storage circuit breaker open".into(),
                };
            }
        }
        let total = self.membership.len();
        let up = self.membership.up_nodes().len();
        if up < total {
            return ClusterHealth::Degraded {
                reason: format!("{up}/{total} nodes up"),
            };
        }
        ClusterHealth::Healthy
    }

    /// Read-admission front door: queries are served unless the cluster
    /// is down (§3.4). Degraded and read-only states still serve reads
    /// — that is the point of the depot and of k-safety.
    pub(crate) fn admit_read(&self) -> Result<()> {
        if let ClusterHealth::Down { reason } = self.cluster_health() {
            return Err(EonError::ClusterDown(reason));
        }
        Ok(())
    }

    /// Write-admission front door: typed fast-fail instead of deep
    /// failover errors. A down cluster rejects with `ClusterDown`; an
    /// open breaker rejects with `StoreUnavailable` *through the
    /// breaker* so fast-fails advance its cooldown and the post-cooldown
    /// admission proceeds as the half-open probe.
    pub(crate) fn admit_write(&self) -> Result<()> {
        if let ClusterHealth::Down { reason } = self.cluster_health() {
            return Err(EonError::ClusterDown(reason));
        }
        if let Some(b) = &self.breaker {
            b.admit()?;
        }
        Ok(())
    }

    /// One heartbeat of the self-healing loop: probe liveness, declare
    /// transitions, run at most one subscription-repair pass, and
    /// auto-restart nodes down long enough. Deterministic: the same
    /// kill/flap schedule against the same tick cadence produces the
    /// same report sequence and detection trace.
    pub fn supervise_tick(&self) -> SupervisorReport {
        let mut st = self.supervisor.lock();
        let events = st.detector.tick(&self.membership);
        let tick = st.detector.ticks();
        let mut report = SupervisorReport {
            tick,
            events: events.clone(),
            ..Default::default()
        };

        for e in &events {
            match e.transition {
                HealthTransition::Down => {
                    st.down_since.insert(e.node, e.tick);
                    st.needs_rebalance = true;
                }
                HealthTransition::Recovered => {
                    st.down_since.remove(&e.node);
                    st.needs_rebalance = true;
                }
                HealthTransition::Suspect => {}
            }
        }

        // Auto re-admission: a node down long enough gets the full
        // §3.3 restart path (recover local log, catch up, re-subscribe,
        // warm cache). "Already up" just means it raced a manual
        // restart or flapped back — the detector will declare recovery.
        if st.restart_ticks > 0 {
            let due: Vec<NodeId> = st
                .down_since
                .iter()
                .filter(|(_, since)| tick.saturating_sub(**since) >= st.restart_ticks)
                .map(|(id, _)| *id)
                .collect();
            for id in sorted(due) {
                match self.restart_node(id) {
                    Ok(_) => {
                        st.down_since.remove(&id);
                        st.needs_rebalance = true;
                        report.restarted.push(id);
                        self.config
                            .obs
                            .counter("supervisor_restarts_total", &[("subsystem", "supervisor")])
                            .inc();
                    }
                    Err(EonError::Internal(msg)) if msg.contains("already up") => {
                        st.down_since.remove(&id);
                    }
                    Err(e) => report.errors.push(format!("restart {id}: {e}")),
                }
            }
        }

        // Subscription takeover: one repair pass per tick until a pass
        // has nothing left to do.
        if st.needs_rebalance {
            match self.repair_subscriptions() {
                Ok(0) => st.needs_rebalance = false,
                Ok(n) => {
                    report.takeover_ops += n;
                    self.config
                        .obs
                        .counter("supervisor_takeover_ops_total", &[("subsystem", "supervisor")])
                        .add(n as u64);
                }
                Err(e) => report.errors.push(format!("repair: {e}")),
            }
        }
        report
    }

    /// Detector view of one node (tests and operators).
    pub fn node_health(&self, id: NodeId) -> NodeHealth {
        self.supervisor.lock().detector.health(id)
    }

    /// The deterministic detection trace: one line per declared
    /// transition, `t<tick> <node> SUSPECT|DOWN|RECOVERED`.
    pub fn health_trace(&self) -> String {
        self.supervisor.lock().detector.trace_text()
    }

    /// Ticks the detector has run.
    pub fn supervisor_ticks(&self) -> u64 {
        self.supervisor.lock().detector.ticks()
    }

    /// One subscription-repair pass over the surviving nodes. Returns
    /// the number of catalog ops committed (0 = converged). The raw
    /// `rebalance_plan` is filtered:
    ///
    /// * never drop (or mark REMOVING) a subscription of a
    ///   commissioned-but-down node — it is expected back;
    /// * never drop replica-shard subscriptions — every node keeps its
    ///   replicated-projection subscription for its whole life
    ///   (`remove_node` is the only decommission path).
    ///
    /// Surplus on *up* nodes (takeover subscriptions made redundant by
    /// a rejoining node) is trimmed normally, so repeated passes
    /// converge back to the ring layout.
    pub(crate) fn repair_subscriptions(&self) -> Result<usize> {
        let up_ids = self.membership.up_ids();
        let coord = self
            .membership
            .up_nodes()
            .into_iter()
            .next()
            .ok_or_else(|| EonError::ClusterDown("no nodes up".into()))?;
        let replica = self.replica_shard();
        let snapshot = coord.catalog.snapshot();
        let ops: Vec<CatalogOp> =
            eon_shard::rebalance_plan(&snapshot, &up_ids, self.config.k_safety)
                .into_iter()
                .filter(|op| match op {
                    CatalogOp::UpsertSubscription(Subscription {
                        node,
                        shard,
                        state: SubState::Removing,
                    }) => *shard != replica && up_ids.contains(node),
                    CatalogOp::RemoveSubscription { node, shard } => {
                        *shard != replica && up_ids.contains(node)
                    }
                    _ => true,
                })
                .collect();
        if ops.is_empty() {
            return Ok(0);
        }
        let n = ops.len();
        let mut txn = coord.catalog.begin();
        for op in ops {
            txn.push(op);
        }
        self.commit_cluster(txn, &coord)?;
        for id in sorted(up_ids) {
            self.promote_subscriptions(id, &coord)?;
        }
        Ok(n)
    }
}

/// Deterministic iteration order for repair and restart passes.
fn sorted(mut ids: Vec<NodeId>) -> Vec<NodeId> {
    ids.sort();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EonConfig;
    use eon_storage::MemFs;
    use std::sync::Arc;

    fn db(config: EonConfig) -> Arc<EonDb> {
        EonDb::create(Arc::new(MemFs::new()), config).unwrap()
    }

    #[test]
    fn healthy_cluster_reports_healthy_and_ticks_do_nothing() {
        let db = db(EonConfig::new(3, 3));
        assert_eq!(db.cluster_health(), ClusterHealth::Healthy);
        for _ in 0..5 {
            let r = db.supervise_tick();
            assert!(!r.acted(), "healthy cluster must not trigger repair: {r:?}");
        }
        assert!(db.health_trace().is_empty());
    }

    #[test]
    fn dead_node_is_detected_taken_over_and_restarted() {
        // down after 2 ticks, restart after 2 more.
        let db = db(EonConfig::new(3, 3)
            .health_ticks(1, 2, 1)
            .supervisor_restart_ticks(2));
        db.kill_node(eon_types::NodeId(2)).unwrap();
        let mut restarted = false;
        for _ in 0..8 {
            let r = db.supervise_tick();
            restarted |= !r.restarted.is_empty();
        }
        assert!(restarted, "supervisor never restarted the dead node");
        assert!(
            db.membership().get(eon_types::NodeId(2)).unwrap().is_up(),
            "node 2 should be back up"
        );
        // Detection trace shows DOWN then RECOVERED for node 2.
        let trace = db.health_trace();
        assert!(trace.contains("node2 DOWN"), "trace: {trace}");
        assert!(trace.contains("node2 RECOVERED"), "trace: {trace}");
        assert_eq!(db.cluster_health(), ClusterHealth::Healthy);
        db.ensure_viable().unwrap();
    }

    #[test]
    fn takeover_restores_coverage_without_restart() {
        // Auto-restart off: the takeover alone must restore coverage.
        let db = db(EonConfig::new(3, 3)
            .health_ticks(1, 2, 1)
            .supervisor_restart_ticks(0));
        db.kill_node(eon_types::NodeId(0)).unwrap();
        for _ in 0..6 {
            db.supervise_tick();
        }
        let snap = db.snapshot().unwrap();
        // Every segment shard has k+1 ACTIVE subscribers among the
        // survivors (the dead node's subscriptions don't count).
        let up = db.membership().up_ids();
        for s in db.segment_shards() {
            let cover = snap
                .subscribers_in(s, eon_catalog::SubState::Active)
                .into_iter()
                .filter(|n| up.contains(n))
                .count();
            assert!(
                cover > db.config().k_safety,
                "shard {s} covered by {cover} survivors"
            );
        }
        // The dead node's subscriptions were not dropped.
        assert!(
            !snap.subscriptions_of(eon_types::NodeId(0)).is_empty(),
            "down node keeps its subscriptions"
        );
        matches!(db.cluster_health(), ClusterHealth::Degraded { .. });
    }

    #[test]
    fn down_cluster_rejects_with_typed_cluster_down() {
        let db = db(EonConfig::new(3, 3));
        for n in db.membership().all() {
            n.kill();
        }
        assert!(matches!(db.cluster_health(), ClusterHealth::Down { .. }));
        assert!(matches!(db.admit_read(), Err(EonError::ClusterDown(_))));
        assert!(matches!(db.admit_write(), Err(EonError::ClusterDown(_))));
    }

    #[test]
    fn same_schedule_same_trace_and_reports() {
        let run = || {
            let db = db(EonConfig::new(3, 3)
                .health_ticks(1, 2, 1)
                .supervisor_restart_ticks(2));
            let mut acted = Vec::new();
            for t in 0..10 {
                if t == 1 {
                    db.kill_node(eon_types::NodeId(1)).unwrap();
                }
                let r = db.supervise_tick();
                acted.push((r.tick, r.events.len(), r.takeover_ops, r.restarted.len()));
            }
            (db.health_trace(), acted)
        };
        assert_eq!(run(), run());
    }
}
