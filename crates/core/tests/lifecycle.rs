//! End-to-end lifecycle tests: node failure and recovery (§3.3, §6.1),
//! elastic scale out/in (§6.4), and revive from shared storage (§3.5).

use std::sync::Arc;

use eon_catalog::SubState;
use eon_columnar::Projection;
use eon_core::{EonConfig, EonDb};
use eon_exec::{AggSpec, Expr, Plan, ScanSpec};
use eon_storage::{MemFs, SharedFs};
use eon_types::{schema, NodeId, Value};

fn db_loaded(nodes: usize, shards: usize) -> (SharedFs, Arc<EonDb>) {
    let shared: SharedFs = Arc::new(MemFs::new());
    let db = EonDb::create(shared.clone(), EonConfig::new(nodes, shards)).unwrap();
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..1500)
        .map(|i| vec![Value::Int(i), Value::Int(i % 11)])
        .collect();
    db.copy_into("t", rows).unwrap();
    (shared, db)
}

fn total(db: &EonDb) -> i64 {
    let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()]);
    db.query(&plan).unwrap()[0][0].as_int().unwrap()
}

fn sum_v(db: &EonDb) -> i64 {
    let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::sum(Expr::col(1))]);
    db.query(&plan).unwrap()[0][0].as_int().unwrap()
}

#[test]
fn queries_survive_single_node_failure() {
    let (_, db) = db_loaded(4, 3);
    let before = (total(&db), sum_v(&db));
    db.kill_node(NodeId(1)).unwrap();
    // No repair needed: other subscribers serve immediately (§6.1).
    assert_eq!((total(&db), sum_v(&db)), before);
}

#[test]
fn restart_resubscribes_and_catches_up() {
    let (_, db) = db_loaded(3, 3);
    let before = total(&db);
    db.kill_node(NodeId(2)).unwrap();
    // Commit work while the node is down so it falls behind.
    db.copy_into(
        "t",
        (2000..2100).map(|i| vec![Value::Int(i), Value::Int(0)]).collect(),
    )
    .unwrap();
    assert_eq!(total(&db), before + 100);

    db.restart_node(NodeId(2)).unwrap();
    let node = db.membership().get(NodeId(2)).unwrap();
    assert!(node.is_up());
    // Caught up to the cluster version.
    assert_eq!(node.catalog.version(), db.version());
    // All its subscriptions are ACTIVE again.
    let snap = db.snapshot().unwrap();
    for s in snap.subscriptions_of(NodeId(2)) {
        assert_eq!(s.state, SubState::Active, "{s:?}");
    }
    assert_eq!(total(&db), before + 100);
}

#[test]
fn restarted_node_cache_is_warm() {
    let (_, db) = db_loaded(3, 3);
    // Touch data so peers have warm caches.
    let _ = total(&db);
    db.kill_node(NodeId(0)).unwrap();
    let warmed = db.restart_node(NodeId(0)).unwrap();
    assert!(warmed > 0, "peer warming moved no files");
}

#[test]
fn add_node_without_data_redistribution() {
    let (shared, db) = db_loaded(3, 3);
    let puts_before = shared.stats().puts;
    let before = (total(&db), sum_v(&db));
    let id = db.add_node().unwrap();
    assert_eq!(db.membership().len(), 4);
    // Elasticity (§6.4): adding a node writes metadata (checkpoint),
    // but never rewrites data containers.
    let snap = db.snapshot().unwrap();
    let container_keys: Vec<&str> = snap.containers.values().map(|c| c.key.as_str()).collect();
    let puts_after = shared.stats().puts;
    // No data/ puts: every new shared-storage write is metadata.
    assert!(puts_after >= puts_before);
    for key in shared.list("data/").unwrap() {
        assert!(container_keys.contains(&key.as_str()) || snap
            .delete_vectors
            .values()
            .any(|d| d.key == key));
    }
    // New node participates and answers stay exact.
    assert_eq!((total(&db), sum_v(&db)), before);
    let new_subs = snap.subscriptions_of(id);
    assert!(!new_subs.is_empty());
    for s in new_subs {
        assert_eq!(s.state, SubState::Active);
    }
}

#[test]
fn remove_node_keeps_fault_tolerance() {
    let (_, db) = db_loaded(4, 3);
    let before = total(&db);
    db.remove_node(NodeId(3)).unwrap();
    assert_eq!(db.membership().len(), 3);
    let snap = db.snapshot().unwrap();
    assert!(snap.subscriptions_of(NodeId(3)).is_empty());
    // Every shard still has >= 2 ACTIVE subscribers.
    for s in db.segment_shards() {
        assert!(snap.subscribers_in(s, SubState::Active).len() >= 2);
    }
    assert_eq!(total(&db), before);
}

#[test]
fn revive_respects_lease_and_truncation() {
    let (shared, db) = db_loaded(3, 3);
    let expect_rows = total(&db);
    db.sync_metadata(1_000).unwrap();

    // Lease still live: revive refuses.
    let err = EonDb::revive(shared.clone(), EonConfig::new(3, 3), 2_000);
    assert!(err.is_err(), "revive should refuse while lease is live");

    // After the lease expires, revive succeeds and data is intact.
    drop(db);
    let revived = EonDb::revive(shared.clone(), EonConfig::new(3, 3), 20_000).unwrap();
    assert_eq!(total(&revived), expect_rows);
    // New incarnation recorded as the revive commit point (§3.5).
    let info = eon_catalog::ClusterInfo::read(shared.as_ref()).unwrap().unwrap();
    assert_eq!(info.incarnation, revived.incarnation());
}

#[test]
fn revive_discards_unsynced_commits() {
    let (shared, db) = db_loaded(3, 3);
    let synced_rows = total(&db);
    db.sync_metadata(1_000).unwrap();
    // Commit more data but do NOT sync: these commits exist only in
    // node-local logs, so a catastrophic cluster loss rewinds past
    // them (§3.5's truncation semantics).
    db.copy_into(
        "t",
        (5000..5100).map(|i| vec![Value::Int(i), Value::Int(0)]).collect(),
    )
    .unwrap();
    assert_eq!(total(&db), synced_rows + 100);
    drop(db);

    let revived = EonDb::revive(shared, EonConfig::new(3, 3), 50_000).unwrap();
    assert_eq!(total(&revived), synced_rows, "unsynced load must be truncated");
    // The revived cluster keeps working: load + query.
    revived
        .copy_into(
            "t",
            (9000..9010).map(|i| vec![Value::Int(i), Value::Int(1)]).collect(),
        )
        .unwrap();
    assert_eq!(total(&revived), synced_rows + 10);
}

#[test]
fn cluster_shuts_down_on_coverage_loss() {
    let (_, db) = db_loaded(3, 3);
    // k_safety = 1: two nodes down can uncover a shard.
    db.kill_node(NodeId(0)).unwrap();
    db.kill_node(NodeId(1)).unwrap();
    let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()]);
    assert!(db.query(&plan).is_err(), "must refuse rather than answer wrong");
}
